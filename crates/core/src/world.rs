//! The deterministic simulation world.
//!
//! One [`World`] owns a community of client machines and a server machine
//! joined by a simulated internetwork, per-client RPC transports
//! (UDP-fixed, UDP-dynamic or TCP), and the NFS server. Workload code
//! runs on real OS threads in natural blocking style against the
//! [`Syscalls`] trait; determinism is preserved by strict hand-off —
//! exactly one workload thread is runnable at any instant, and it runs
//! only while the event loop waits for its next request.
//!
//! Every CPU microsecond, disk seek, wire serialization, IP fragment and
//! retransmission flows through this loop, which is what lets the bench
//! harnesses reproduce the paper's graphs.
//!
//! # Clients
//!
//! [`WorldConfig::clients`] scales the world from the paper's measured
//! single client to a crowd: each client machine gets its own host model,
//! transport instance, UDP source port (`1023 + index`, the BSD reserved-
//! port convention) and RNG stream split stably from the world seed.
//! Client 0 of an N-client world is bit-identical to the only client of a
//! 1-client world, which keeps every pre-crowd experiment byte-stable.
//!
//! # The nfsd service pool
//!
//! A real 4.3BSD server runs a fixed set of `nfsd` daemons; requests
//! beyond that concurrency wait in the socket buffer. [`WorldConfig::
//! nfsds`] models the same bound: requests arriving while every daemon
//! context is busy queue FIFO, and per-request queueing delay and service
//! time are recorded in [`NfsdStats`]. `nfsds == 0` retains the pre-pool
//! model (a daemon per request, serialization only through the CPU and
//! disks), which the calibrated single-client experiments rely on.
//!
//! # Sharded fleets
//!
//! [`WorldConfig::servers`] scales the server side the same way:
//! `M > 1` builds M server machines, each with its own host model, NFS
//! server instance (hence its own dup cache and boot epoch), and nfsd
//! pool, hanging off the shared trunk of the chosen topology. Every
//! client keeps one transport *per server* — independent XID streams
//! and RTO state per (client, server) pair — and addresses RPCs with
//! [`Syscalls::rpc_to`]. An M = 1 world is byte-identical to the
//! pre-shard single-server world. Under PDES the whole fleet lives in
//! the hub domain (the servers share the trunk, so they share the
//! coordinator's queue); the carve must be legal toward every server
//! and publishes the minimum lookahead over shards.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

use renofs_mbuf::{CopyMeter, MbufChain};
use renofs_netsim::topology::presets::{self, Background};
use renofs_netsim::{
    AccessNet, Datagram, Delivery, FaultPlan, NetEvent, NetOutput, NetStats, Network, NodeId,
    ProtoHeader, IP_HEADER, TCP_HEADER,
};
use renofs_sim::cpu::CpuCategory;
use renofs_sim::pdes::DomainQ;
use renofs_sim::stats::Running;
use renofs_sim::{profile, SimDuration, SimTime};
use renofs_sunrpc::{frame_record, peek_xid_kind, MsgKind, RecordReader, NFS_PORT};
use renofs_transport::{TcpConfig, TcpConn, UdpAction, UdpRpcClient, UdpRpcConfig, UdpStats};

use crate::costs;
use crate::host::{udp_fragments, Host, HostProfile};
use crate::proto::NfsProc;
use crate::server::{NfsServer, ServerConfig};
use crate::syscalls::{RpcError, RpcResult, Syscalls, Ticket};

/// Which internetwork configuration to build (the paper's three).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopologyKind {
    /// Configuration 1: one Ethernet.
    SameLan,
    /// Configuration 2: Ethernets + 80 Mbit token ring + 2 routers.
    TokenRing,
    /// Configuration 3: + 56 Kbps serial link + 3 routers.
    SlowLink,
}

/// Which RPC transport the mount uses.
#[derive(Clone, Debug)]
pub enum TransportKind {
    /// Classic NFS/UDP: fixed mount-time RTO.
    UdpFixed {
        /// The mount `timeo`.
        timeo: SimDuration,
    },
    /// The paper's tuned NFS/UDP: per-class dynamic RTO + congestion
    /// window, no slow start.
    UdpDynamic {
        /// The mount `timeo` (fallback for unestimated classes).
        timeo: SimDuration,
    },
    /// A custom UDP configuration (for the ablation experiments).
    UdpCustom(UdpRpcConfig),
    /// NFS over TCP with record marking.
    Tcp,
}

/// Mount semantics: whether RPCs block forever or time out.
///
/// The BSD `mount_nfs` flags this models: a **hard** mount (the default)
/// retries forever, printing `server not responding` after `retrans`
/// attempts and `server ok` when the server answers again; a **soft**
/// mount abandons a call after `retrans` transmissions and fails the
/// syscall with `ETIMEDOUT` ([`RpcError::TimedOut`] here). Soft semantics
/// apply to the UDP transports; a TCP mount is inherently hard in this
/// simulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MountOptions {
    /// Soft mount: give up after `retrans` transmissions.
    pub soft: bool,
    /// Transmission budget (soft) / console-report threshold (hard).
    pub retrans: u32,
}

impl MountOptions {
    /// Hard mount, BSD default `retrans`.
    pub fn hard() -> Self {
        MountOptions {
            soft: false,
            retrans: 4,
        }
    }

    /// Soft mount with the given transmission budget.
    pub fn soft(retrans: u32) -> Self {
        MountOptions {
            soft: true,
            retrans: retrans.max(1),
        }
    }
}

impl Default for MountOptions {
    fn default() -> Self {
        MountOptions::hard()
    }
}

/// What a client console event records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClientEventKind {
    /// `nfs: server not responding` — a hard mount crossed its `retrans`
    /// threshold and is still retrying.
    NotResponding,
    /// `nfs: server ok` — a reply arrived after `NotResponding`.
    ServerOk,
    /// A soft-mount call exhausted its budget and failed with
    /// `ETIMEDOUT`.
    SoftTimeout,
    /// The fault plan crashed the server.
    ServerCrashed,
    /// The server rebooted (volatile state lost, disk intact).
    ServerRebooted,
}

/// A timestamped console event, in emission order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClientEvent {
    /// Virtual time of the event.
    pub at: SimTime,
    /// What happened.
    pub kind: ClientEventKind,
}

/// World construction parameters.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Internetwork layout.
    pub topology: TopologyKind,
    /// Cross-traffic and loss levels.
    pub background: Background,
    /// RPC transport.
    pub transport: TransportKind,
    /// Server software configuration.
    pub server: ServerConfig,
    /// Server machine.
    pub server_host: HostProfile,
    /// Client machine (every client in the community uses this profile).
    pub client_host: HostProfile,
    /// Number of client machines mounting the server.
    pub clients: usize,
    /// Number of server machines the export namespace is sharded over.
    /// 1 (the default) is the paper's single box; M > 1 builds a fleet
    /// with per-server nfsd pools, dup caches and boot epochs.
    pub servers: usize,
    /// nfsd daemon contexts on the server; requests beyond this
    /// concurrency queue FIFO. 0 = unbounded (the pre-pool model used by
    /// the calibrated single-client experiments).
    pub nfsds: usize,
    /// Number of biods (asynchronous I/O daemons) on each client; 0
    /// makes asynchronous requests run synchronously (write-through).
    pub biods: usize,
    /// Master random seed.
    pub seed: u64,
    /// Scheduled fault timeline. The empty default injects nothing and
    /// leaves runs byte-identical to a fault-free world.
    pub faults: FaultPlan,
    /// Hard/soft mount semantics for the UDP transports.
    pub mount: MountOptions,
    /// OS threads driving the simulation itself. 1 (the default) runs the
    /// event loop on the calling thread; N > 1 spreads the client domains
    /// of a partitioned world over N − 1 workers plus the coordinator.
    /// Results are byte-identical at every value: both modes execute the
    /// same conservative rounds in the same per-domain order.
    pub sim_threads: usize,
    /// Refuses the per-machine domain partition even when it is legal,
    /// keeping the single global event queue (trace recorders and A/B
    /// overhead baselines use this).
    pub force_monolithic: bool,
}

impl WorldConfig {
    /// The paper's baseline: Reno client and server, MicroVAXIIs, one
    /// LAN, dynamic-RTO UDP.
    pub fn baseline() -> Self {
        WorldConfig {
            topology: TopologyKind::SameLan,
            background: Background::quiet(),
            transport: TransportKind::UdpDynamic {
                timeo: SimDuration::from_secs(1),
            },
            server: ServerConfig::reno(),
            server_host: HostProfile::microvax_tuned(),
            client_host: HostProfile::microvax_tuned(),
            clients: 1,
            servers: 1,
            nfsds: 0,
            biods: 4,
            seed: 42,
            faults: FaultPlan::new(),
            mount: MountOptions::hard(),
            sim_threads: 1,
            force_monolithic: false,
        }
    }
}

/// Requests from workload threads.
enum Req {
    Now,
    Sleep(SimDuration),
    ChargeCpu(SimDuration),
    Rpc(usize, NfsProc, MbufChain),
    RpcAsync(usize, NfsProc, MbufChain),
    AwaitTicket(u64),
    PollTicket(u64),
    ForgetTicket(u64),
    WaitAllAsync,
    LocalDisk {
        bytes: usize,
        write: bool,
        seq: bool,
    },
    Finished,
}

/// Responses to workload threads.
enum Resp {
    Time(SimTime),
    Unit,
    Chain(RpcResult),
    MaybeChain(Option<RpcResult>),
    Ticket(u64),
}

/// Who is waiting for an RPC reply.
#[derive(Clone, Copy, Debug)]
enum Waker {
    Sync(usize),
    Async(u64),
}

/// World events.
// Payload-carrying variants dominate the size; events are short-lived
// heap-queue entries, so boxing would only add indirection.
#[allow(clippy::large_enum_variant)]
enum Ev {
    Net(NetEvent),
    Wake(usize, Resp),
    AsyncDone {
        client: usize,
        ticket: u64,
        result: RpcResult,
    },
    UdpTimer {
        client: usize,
        server: usize,
        xid: u32,
        gen: u64,
    },
    TcpTimer {
        client: usize,
        server: usize,
        server_side: bool,
        gen: u64,
    },
    /// A message finishes its send-side CPU and enters the network.
    Send {
        src: NodeId,
        dst: NodeId,
        proto: ProtoHeader,
        payload: MbufChain,
    },
    /// An nfsd daemon context handed its reply to the transport and
    /// returns to the pool.
    NfsdDone {
        server: usize,
    },
    /// Fault plan: a server dies, losing volatile state.
    ServerCrash {
        server: usize,
        downtime: SimDuration,
    },
    /// Fault plan: a server finishes rebooting.
    ServerReboot {
        server: usize,
    },
    /// A console note whose time is known at construction (crash/reboot
    /// observations). Partitioned worlds pre-schedule these in each client
    /// domain so the hub's crash handler never has to reach into client
    /// state; monolithic worlds never schedule them.
    Note {
        kind: ClientEventKind,
    },
}

// The UDP client is large but there are only a handful per world.
#[allow(clippy::large_enum_variant)]
enum Transport {
    Udp(UdpRpcClient),
    Tcp(Box<TcpState>),
}

struct TcpState {
    client: TcpConn,
    server: TcpConn,
    client_reader: RecordReader,
    server_reader: RecordReader,
    mss: usize,
}

/// Everything one client machine owns: its node, host model, transport
/// endpoint, source port, in-flight RPC table, console log, and biod
/// accounting. Index 0 is "the" client of the single-client experiments.
struct ClientRt {
    node: NodeId,
    host: Host,
    /// One transport per server: independent XID streams and RTO state
    /// per (client, server) pair, so two shards can never observe — or
    /// be confused by — each other's xids.
    transports: Vec<Transport>,
    sport: u16,
    /// Path MTU toward each server (fragmentation costing).
    mtus: Vec<usize>,
    /// In-flight RPCs by (server, xid). Per-client: independent machines
    /// draw xids from independent counters and routinely collide, and so
    /// do one machine's per-server streams.
    pending: HashMap<(usize, u32), Waker>,
    events: Vec<ClientEvent>,
    async_outstanding: usize,
    parked_async: VecDeque<(usize, usize, NfsProc, MbufChain)>,
    wait_all: Vec<usize>,
}

/// A request waiting for a free nfsd daemon context.
struct QueuedRpc {
    request: MbufChain,
    client: usize,
    tcp: bool,
    arrival: SimTime,
}

/// nfsd service-pool accounting: how long requests waited for a daemon
/// and how long daemons spent producing each reply.
#[derive(Clone, Debug, Default)]
pub struct NfsdStats {
    /// Requests fully served (handed a reply to the transport).
    pub served: u64,
    /// Requests that had to wait for a daemon.
    pub queued: u64,
    /// High-water mark of the wait queue.
    pub peak_queue: usize,
    /// Per-request queueing delay in ms (0.0 when a daemon was free);
    /// kept as raw samples so harnesses can report exact percentiles.
    pub queue_delays_ms: Vec<f64>,
    /// Daemon occupancy per request: service start to reply handoff.
    pub service_ms: Running,
}

impl NfsdStats {
    /// Exact queue-delay quantile (0.0 when nothing was served).
    pub fn queue_delay_quantile(&self, q: f64) -> f64 {
        if self.queue_delays_ms.is_empty() {
            return 0.0;
        }
        let mut v = self.queue_delays_ms.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN delays"));
        let idx = ((v.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        v[idx]
    }
}

struct ThreadState {
    resp_tx: Sender<Resp>,
    handle: Option<JoinHandle<()>>,
}

/// The syscall endpoint handed to each workload thread.
pub struct WorldSys {
    id: usize,
    req_tx: Sender<(usize, Req)>,
    resp_rx: Receiver<Resp>,
}

impl WorldSys {
    fn ask(&mut self, req: Req) -> Resp {
        self.req_tx.send((self.id, req)).expect("world alive");
        self.resp_rx.recv().expect("world alive")
    }
}

impl Syscalls for WorldSys {
    fn now(&mut self) -> SimTime {
        match self.ask(Req::Now) {
            Resp::Time(t) => t,
            _ => unreachable!(),
        }
    }

    fn charge_cpu(&mut self, d: SimDuration) {
        match self.ask(Req::ChargeCpu(d)) {
            Resp::Unit => {}
            _ => unreachable!(),
        }
    }

    fn sleep(&mut self, d: SimDuration) {
        match self.ask(Req::Sleep(d)) {
            Resp::Unit => {}
            _ => unreachable!(),
        }
    }

    fn rpc(&mut self, proc: NfsProc, msg: MbufChain) -> RpcResult {
        self.rpc_to(0, proc, msg)
    }

    fn rpc_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> RpcResult {
        match self.ask(Req::Rpc(server, proc, msg)) {
            Resp::Chain(c) => c,
            _ => unreachable!(),
        }
    }

    fn rpc_async(&mut self, proc: NfsProc, msg: MbufChain) -> Ticket {
        self.rpc_async_to(0, proc, msg)
    }

    fn rpc_async_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> Ticket {
        match self.ask(Req::RpcAsync(server, proc, msg)) {
            Resp::Ticket(t) => Ticket(t),
            _ => unreachable!(),
        }
    }

    fn await_ticket(&mut self, t: Ticket) -> RpcResult {
        match self.ask(Req::AwaitTicket(t.0)) {
            Resp::Chain(c) => c,
            _ => unreachable!(),
        }
    }

    fn poll_ticket(&mut self, t: Ticket) -> Option<RpcResult> {
        match self.ask(Req::PollTicket(t.0)) {
            Resp::MaybeChain(c) => c,
            _ => unreachable!(),
        }
    }

    fn forget_ticket(&mut self, t: Ticket) {
        match self.ask(Req::ForgetTicket(t.0)) {
            Resp::Unit => {}
            _ => unreachable!(),
        }
    }

    fn wait_all_async(&mut self) {
        match self.ask(Req::WaitAllAsync) {
            Resp::Unit => {}
            _ => unreachable!(),
        }
    }

    fn local_disk(&mut self, bytes: usize, write: bool, sequential: bool) {
        match self.ask(Req::LocalDisk {
            bytes,
            write,
            seq: sequential,
        }) {
            Resp::Unit => {}
            _ => unreachable!(),
        }
    }
}

/// Immutable per-client addressing facts the server domain needs to build
/// replies (node, port, per-server path MTU) without touching
/// client-owned state.
#[derive(Clone)]
struct ClientMeta {
    node: NodeId,
    sport: u16,
    mtus: Vec<usize>,
}

/// One shard's server machine: node, host model, NFS server instance
/// (its own dup cache and boot epoch), crash state, and nfsd service
/// pool. Index 0 is "the" server of the single-server experiments.
struct ServerRt {
    node: NodeId,
    host: Host,
    server: NfsServer,
    up: bool,
    nfsd_busy: usize,
    nfsd_queue: VecDeque<QueuedRpc>,
    nfsd_stats: NfsdStats,
}

/// The server-side simulation domain: the shared internetwork (minus
/// any carved client access links) and every server machine of the
/// fleet. In a partitioned world this is everything domain 0 owns (the
/// shards share the trunk, so they share the coordinator's queue); a
/// monolithic world keeps the same struct and simply runs every event
/// against it from the single global queue.
struct Hub {
    net: Network,
    servers: Vec<ServerRt>,
    /// Node index -> client index, for demultiplexing deliveries.
    node_client: Vec<Option<usize>>,
    /// Node index -> server index, same.
    node_server: Vec<Option<usize>>,
    metas: Vec<ClientMeta>,
    /// nfsd daemon contexts per server (0 = unbounded).
    nfsds: usize,
    scratch: CopyMeter,
    /// Reusable network-step output: drained after every absorb, so the
    /// per-hop path allocates nothing once the vectors reach working size.
    net_out: NetOutput,
}

/// One client machine's simulation-domain runtime: its carved access
/// network, boundary lookaheads, private scheduler (workload threads,
/// request channel, ready FIFO, ticket table) and reusable buffers.
/// Only partitioned worlds build these.
struct ClientDom {
    access: AccessNet,
    /// Client→hub conservative lookahead (uplink propagation delay).
    la_up: SimDuration,
    /// Hub→client conservative lookahead (final-link propagation delay).
    la_dn: SimDuration,
    /// Every shard's server node, indexed by server (Send addressing and
    /// reply demultiplexing inside the client domain).
    server_nodes: Vec<NodeId>,
    biods: usize,
    // Per-client scheduler. Thread ids, ticket numbers and datagram ids
    // are all domain-local; workloads treat every one of them as opaque.
    req_tx: Sender<(usize, Req)>,
    req_rx: Receiver<(usize, Req)>,
    resp_txs: Vec<Sender<Resp>>,
    ready: VecDeque<(usize, Resp)>,
    live: usize,
    tickets_done: HashMap<u64, RpcResult>,
    ticket_waiters: HashMap<u64, usize>,
    forgotten: HashSet<u64>,
    next_ticket: u64,
    /// Event time of this domain's most recent thread finish.
    last_finish: SimTime,
    udp_actions: Vec<UdpAction>,
    net_out: NetOutput,
}

/// Partitioned-world state: the per-client domains and the finish clock.
struct Partition {
    cdoms: Vec<ClientDom>,
    /// Max event time at which any workload thread finished — what the
    /// monolithic engine's clock reads when `run` returns.
    finish: SimTime,
}

/// The simulation world.
pub struct World {
    cfg: WorldConfig,
    /// Per-domain event queues. `doms[0]` is the hub (server) domain; a
    /// monolithic world has only that entry and its plain-counter keys
    /// reproduce the historical single-queue order exactly. Partitioned
    /// worlds add one domain per client at `1 + client index`.
    doms: Vec<DomainQ<Ev>>,
    hub: Hub,
    clients: Vec<ClientRt>,
    /// Per-client domains when the world is partitioned.
    part: Option<Partition>,
    // RPC bookkeeping (tickets are unique world-wide). Monolithic mode
    // only; partitioned worlds keep these per client domain.
    tickets_done: HashMap<u64, RpcResult>,
    ticket_waiters: HashMap<u64, usize>,
    forgotten: HashSet<u64>,
    next_ticket: u64,
    // Threads.
    req_tx: Sender<(usize, Req)>,
    req_rx: Receiver<(usize, Req)>,
    threads: Vec<ThreadState>,
    /// Which client machine each workload thread runs on.
    thread_client: Vec<usize>,
    live_threads: usize,
    ready: VecDeque<(usize, Resp)>,
    started: bool,
    /// Reusable UDP-transport action buffer, drained after every
    /// transport step (monolithic mode; client domains carry their own).
    udp_actions: Vec<UdpAction>,
}

/// Capacity hints carried across the `World`s of a parameter sweep, so
/// repeated cells start with buffers already sized to the workload
/// instead of re-growing them from empty every time.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorldScratch {
    /// Peak event-queue depth observed.
    pub queue_cap: usize,
    /// Peak network-output event burst observed.
    pub net_events_cap: usize,
}

impl WorldScratch {
    /// Folds a finished world's high-water marks into the hints.
    pub fn observe(&mut self, world: &World) {
        for dq in &world.doms {
            self.queue_cap = self.queue_cap.max(dq.peak_depth());
        }
        self.net_events_cap = self.net_events_cap.max(world.hub.net_out.events.capacity());
    }
}

/// Stable per-client split of the world seed; client 0 keeps the
/// unsalted stream so single-client worlds stay byte-identical.
fn client_salt(i: usize) -> u64 {
    (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

impl World {
    /// Builds a world; for TCP every client's connection is established
    /// before returning.
    pub fn new(cfg: WorldConfig) -> Self {
        Self::with_scratch(cfg, &WorldScratch::default())
    }

    /// [`World::new`] with buffer capacity hints from earlier runs.
    pub fn with_scratch(cfg: WorldConfig, scratch: &WorldScratch) -> Self {
        let n = cfg.clients.max(1);
        let m = cfg.servers.max(1);
        let (mut topo, client_nodes, server_nodes) = match cfg.topology {
            TopologyKind::SameLan => presets::same_lan_nm(&cfg.background, n, m),
            TopologyKind::TokenRing => presets::token_ring_path_nm(&cfg.background, n, m),
            TopologyKind::SlowLink => presets::slow_link_path_nm(&cfg.background, n, m),
        };
        for &c in &client_nodes {
            for &s in &server_nodes {
                topo.apply_faults(&cfg.faults, c, s);
            }
        }
        let mut node_client = vec![None; topo.node_count()];
        for (i, &c) in client_nodes.iter().enumerate() {
            node_client[c.0] = Some(i);
        }
        let mut node_server = vec![None; topo.node_count()];
        for (j, &s) in server_nodes.iter().enumerate() {
            node_server[s.0] = Some(j);
        }
        // Soft/hard mount flags configure the UDP transport's retry
        // budget; TCP mounts are hard by construction.
        let mounted = |mut c: UdpRpcConfig| {
            c.soft = cfg.mount.soft;
            c.retrans = cfg.mount.retrans.max(1);
            c
        };
        let mut clients = Vec::with_capacity(n);
        for (i, &node) in client_nodes.iter().enumerate() {
            let mut transports = Vec::with_capacity(m);
            let mut mtus = Vec::with_capacity(m);
            for (j, &snode) in server_nodes.iter().enumerate() {
                let mtu = topo.path_mtu(node, snode).unwrap_or(1500);
                // Per-(client, server) XID stream; server 0 keeps the
                // historical seed so M = 1 stays byte-identical.
                let xid_seed = (i + 1) as u32 ^ ((j as u32) << 20);
                let transport = match &cfg.transport {
                    TransportKind::UdpFixed { timeo } => Transport::Udp(UdpRpcClient::new(
                        mounted(UdpRpcConfig::fixed(*timeo)),
                        xid_seed,
                    )),
                    TransportKind::UdpDynamic { timeo } => Transport::Udp(UdpRpcClient::new(
                        mounted(UdpRpcConfig::dynamic_paper(*timeo)),
                        xid_seed,
                    )),
                    TransportKind::UdpCustom(c) => {
                        Transport::Udp(UdpRpcClient::new(mounted(c.clone()), xid_seed))
                    }
                    TransportKind::Tcp => {
                        let mss = mtu - IP_HEADER - TCP_HEADER;
                        let tcp_cfg = TcpConfig::for_mss(mss);
                        Transport::Tcp(Box::new(TcpState {
                            // The client connection is a placeholder until
                            // `tcp_connect` replaces it with the active
                            // opener and pumps the handshake.
                            client: TcpConn::server(tcp_cfg, 0),
                            server: TcpConn::server(tcp_cfg, 88_000),
                            client_reader: RecordReader::new(),
                            server_reader: RecordReader::new(),
                            mss,
                        }))
                    }
                };
                transports.push(transport);
                mtus.push(mtu);
            }
            clients.push(ClientRt {
                node,
                host: Host::new(cfg.client_host, cfg.seed ^ 0xc11e ^ client_salt(i)),
                transports,
                sport: 1023 + i as u16,
                mtus,
                pending: HashMap::new(),
                events: Vec::new(),
                async_outstanding: 0,
                parked_async: VecDeque::new(),
                wait_all: Vec::new(),
            });
        }
        let net = Network::new(topo, cfg.seed ^ 0x6e65_7473);
        let servers: Vec<ServerRt> = server_nodes
            .iter()
            .enumerate()
            .map(|(j, &snode)| {
                let mut server = NfsServer::new(cfg.server, SimTime::ZERO);
                server.set_client_count(n);
                ServerRt {
                    node: snode,
                    // Server 0 keeps the unsalted stream: M = 1 worlds
                    // stay byte-identical to the pre-shard single box.
                    host: Host::new(cfg.server_host, cfg.seed ^ 0x5e17 ^ client_salt(j)),
                    server,
                    up: true,
                    nfsd_busy: 0,
                    nfsd_queue: VecDeque::new(),
                    nfsd_stats: NfsdStats::default(),
                }
            })
            .collect();
        let metas = clients
            .iter()
            .map(|c| ClientMeta {
                node: c.node,
                sport: c.sport,
                mtus: c.mtus.clone(),
            })
            .collect();
        // Per-machine domain partition: legal only when every client's
        // access network carves cleanly toward every server (draw-free
        // uplink, corruption-free reply paths) so the hub RNG stream is
        // untouched, there are at least two clients to separate, and the
        // transport is UDP (a TCP connection's two endpoints share one
        // congestion state, which cannot be split across domains).
        let carves =
            if !cfg.force_monolithic && n >= 2 && !matches!(cfg.transport, TransportKind::Tcp) {
                client_nodes
                    .iter()
                    .map(|&c| net.carve_access_multi(c, &server_nodes))
                    .collect::<Option<Vec<_>>>()
            } else {
                None
            };
        let mut doms = vec![DomainQ::with_capacity(0, scratch.queue_cap)];
        let part = carves.map(|carves| Partition {
            cdoms: carves
                .into_iter()
                .map(|carve| {
                    doms.push(DomainQ::new(doms.len() as u32));
                    let (req_tx, req_rx) = channel();
                    ClientDom {
                        access: carve.access,
                        la_up: carve.lookahead_up,
                        la_dn: carve.lookahead_down,
                        server_nodes: server_nodes.clone(),
                        biods: cfg.biods,
                        req_tx,
                        req_rx,
                        resp_txs: Vec::new(),
                        ready: VecDeque::new(),
                        live: 0,
                        tickets_done: HashMap::new(),
                        ticket_waiters: HashMap::new(),
                        forgotten: HashSet::new(),
                        next_ticket: 1,
                        last_finish: SimTime::ZERO,
                        udp_actions: Vec::new(),
                        net_out: NetOutput::default(),
                    }
                })
                .collect(),
            finish: SimTime::ZERO,
        });
        let (req_tx, req_rx) = channel();
        let mut world = World {
            hub: Hub {
                net,
                servers,
                node_client,
                node_server,
                metas,
                nfsds: cfg.nfsds,
                scratch: CopyMeter::new(),
                net_out: NetOutput {
                    events: Vec::with_capacity(scratch.net_events_cap),
                    delivered: Vec::new(),
                },
            },
            cfg,
            doms,
            clients,
            part,
            tickets_done: HashMap::new(),
            ticket_waiters: HashMap::new(),
            forgotten: HashSet::new(),
            next_ticket: 1,
            req_tx,
            req_rx,
            threads: Vec::new(),
            thread_client: Vec::new(),
            live_threads: 0,
            ready: VecDeque::new(),
            started: false,
            udp_actions: Vec::new(),
        };
        // Fault-plan crashes hit server 0 (the paper's box; sharded
        // worlds crash their primary shard).
        for (at, downtime) in world.cfg.faults.server_crashes() {
            world.doms[0].push(
                at,
                Ev::ServerCrash {
                    server: 0,
                    downtime,
                },
            );
            if world.part.is_some() {
                // Console notes have statically known times; scheduling
                // them per client domain keeps the hub's crash handler
                // domain-local.
                for dq in &mut world.doms[1..] {
                    dq.push(
                        at,
                        Ev::Note {
                            kind: ClientEventKind::ServerCrashed,
                        },
                    );
                    dq.push(
                        at + downtime,
                        Ev::Note {
                            kind: ClientEventKind::ServerRebooted,
                        },
                    );
                }
            }
        }
        if matches!(world.cfg.transport, TransportKind::Tcp) {
            for ci in 0..world.clients.len() {
                for sj in 0..world.hub.servers.len() {
                    world.tcp_connect(ci, sj);
                }
            }
        }
        world
    }

    /// Whether this world runs as per-machine domains under conservative
    /// synchronization (true) or as one global event queue (false).
    pub fn is_partitioned(&self) -> bool {
        self.part.is_some()
    }

    fn tcp_connect(&mut self, ci: usize, sj: usize) {
        let mss = match &self.clients[ci].transports[sj] {
            Transport::Tcp(t) => t.mss,
            _ => unreachable!(),
        };
        let (conn, out) = TcpConn::client(TcpConfig::for_mss(mss), 11_000, self.doms[0].clock());
        if let Transport::Tcp(t) = &mut self.clients[ci].transports[sj] {
            t.client = conn;
        }
        self.apply_tcp_out(ci, sj, out, true, self.doms[0].clock());
        // Pump the event loop until established.
        for _ in 0..10_000 {
            let established = match &self.clients[ci].transports[sj] {
                Transport::Tcp(t) => t.client.is_established() && t.server.is_established(),
                _ => true,
            };
            if established {
                return;
            }
            match self.doms[0].pop() {
                Some((t, _, ev)) => self.handle_event(t, ev),
                None => break,
            }
        }
        panic!("TCP connection failed to establish");
    }

    /// Server 0's root file handle (as the MOUNT protocol provides).
    pub fn root_handle(&self) -> crate::proto::FileHandle {
        self.root_handle_of(0)
    }

    /// A specific shard's root file handle.
    pub fn root_handle_of(&self, sj: usize) -> crate::proto::FileHandle {
        self.hub.servers[sj].server.root_handle()
    }

    /// Direct access to server 0 (test preloading, stats).
    pub fn server_mut(&mut self) -> &mut NfsServer {
        &mut self.hub.servers[0].server
    }

    /// Direct access to a specific shard's server.
    pub fn server_of_mut(&mut self, sj: usize) -> &mut NfsServer {
        &mut self.hub.servers[sj].server
    }

    /// Number of server machines in the world.
    pub fn server_count(&self) -> usize {
        self.hub.servers.len()
    }

    /// Lifetime queue counters: `(events popped, peak pending depth)`.
    pub fn queue_stats(&self) -> (u64, usize) {
        let pops = self.doms.iter().map(|d| d.pops()).sum();
        let peak = self.doms.iter().map(|d| d.peak_depth()).max().unwrap_or(0);
        (pops, peak)
    }

    /// Starts recording event-queue operations (for replay benchmarks).
    pub fn start_queue_trace(&mut self) {
        self.doms[0].start_trace();
    }

    /// Stops recording and returns the queue operation stream.
    pub fn take_queue_trace(&mut self) -> Vec<renofs_sim::queue::QueueOp> {
        self.doms[0].take_trace()
    }

    /// Read access to server 0.
    pub fn server(&self) -> &NfsServer {
        &self.hub.servers[0].server
    }

    /// Read access to a specific shard's server.
    pub fn server_of(&self, sj: usize) -> &NfsServer {
        &self.hub.servers[sj].server
    }

    /// Server 0's machine (CPU/disk stats).
    pub fn server_host(&self) -> &Host {
        &self.hub.servers[0].host
    }

    /// A specific shard's server machine.
    pub fn server_host_of(&self, sj: usize) -> &Host {
        &self.hub.servers[sj].host
    }

    /// Mutable server-0 machine access (accounting resets).
    pub fn server_host_mut(&mut self) -> &mut Host {
        &mut self.hub.servers[0].host
    }

    /// Number of client machines in the world.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Client 0's machine (the single-client experiments' client).
    pub fn client_host(&self) -> &Host {
        &self.clients[0].host
    }

    /// Mutable access to client 0's machine.
    pub fn client_host_mut(&mut self) -> &mut Host {
        &mut self.clients[0].host
    }

    /// A specific client's machine.
    pub fn client_host_of(&self, ci: usize) -> &Host {
        &self.clients[ci].host
    }

    /// Network statistics. A partitioned world folds each client domain's
    /// access-network shard into the hub's totals.
    pub fn net_stats(&self) -> NetStats {
        let mut s = self.hub.net.stats();
        if let Some(p) = &self.part {
            for cd in &p.cdoms {
                s.absorb(&cd.access.stats());
            }
        }
        s
    }

    /// Client 0's UDP transport statistics, if the mount uses UDP.
    pub fn udp_stats(&self) -> Option<UdpStats> {
        self.udp_stats_of(0)
    }

    /// A specific client's UDP transport statistics toward server 0.
    pub fn udp_stats_of(&self, ci: usize) -> Option<UdpStats> {
        self.udp_stats_to(ci, 0)
    }

    /// A specific (client, server) pair's UDP transport statistics.
    pub fn udp_stats_to(&self, ci: usize, sj: usize) -> Option<UdpStats> {
        match &self.clients[ci].transports[sj] {
            Transport::Udp(u) => Some(u.stats()),
            _ => None,
        }
    }

    /// Current RTO for a class (Graph 7 traces), if client 0 uses UDP.
    pub fn current_rto(&self, class: renofs_transport::RpcClass) -> Option<SimDuration> {
        match &self.clients[0].transports[0] {
            Transport::Udp(u) => Some(u.current_rto(class)),
            _ => None,
        }
    }

    /// Client 0's TCP statistics, if the mount uses TCP.
    pub fn tcp_stats(&self) -> Option<renofs_transport::tcp::TcpStats> {
        self.tcp_stats_of(0)
    }

    /// A specific client's TCP statistics toward server 0.
    pub fn tcp_stats_of(&self, ci: usize) -> Option<renofs_transport::tcp::TcpStats> {
        self.tcp_stats_to(ci, 0)
    }

    /// A specific (client, server) pair's TCP transport statistics.
    pub fn tcp_stats_to(&self, ci: usize, sj: usize) -> Option<renofs_transport::tcp::TcpStats> {
        match &self.clients[ci].transports[sj] {
            Transport::Tcp(t) => Some(t.client.stats()),
            _ => None,
        }
    }

    /// Server 0's nfsd service-pool accounting.
    pub fn nfsd_stats(&self) -> &NfsdStats {
        &self.hub.servers[0].nfsd_stats
    }

    /// A specific shard's nfsd service-pool accounting.
    pub fn nfsd_stats_of(&self, sj: usize) -> &NfsdStats {
        &self.hub.servers[sj].nfsd_stats
    }

    /// Clears nfsd pool accounting (warm-up windows), like the host
    /// models' accounting resets.
    pub fn reset_nfsd_accounting(&mut self) {
        for s in &mut self.hub.servers {
            s.nfsd_stats = NfsdStats::default();
        }
    }

    /// Current virtual time. For a partitioned world after `run`, this is
    /// the event time of the last workload-thread finish — the same
    /// instant the monolithic engine's clock stops at.
    pub fn now(&self) -> SimTime {
        match &self.part {
            Some(p) => p.finish,
            None => self.doms[0].clock(),
        }
    }

    /// Client 0's timestamped console-event log (`server not
    /// responding`, `server ok`, soft timeouts, crashes, reboots), in
    /// emission order.
    pub fn client_events(&self) -> &[ClientEvent] {
        &self.clients[0].events
    }

    /// A specific client's console-event log.
    pub fn client_events_of(&self, ci: usize) -> &[ClientEvent] {
        &self.clients[ci].events
    }

    /// Whether server 0 is currently up (fault plans can crash it).
    pub fn server_is_up(&self) -> bool {
        self.hub.servers[0].up
    }

    /// Whether a specific shard's server is currently up.
    pub fn server_is_up_of(&self, sj: usize) -> bool {
        self.hub.servers[sj].up
    }

    /// Spawns a workload thread on client 0. It starts suspended;
    /// [`World::run`] schedules it.
    pub fn spawn<F>(&mut self, f: F) -> usize
    where
        F: FnOnce(&mut WorldSys) + Send + 'static,
    {
        self.spawn_on(0, f)
    }

    /// Spawns a workload thread on the given client machine. It starts
    /// suspended; [`World::run`] schedules it.
    pub fn spawn_on<F>(&mut self, client: usize, f: F) -> usize
    where
        F: FnOnce(&mut WorldSys) + Send + 'static,
    {
        assert!(client < self.clients.len(), "no such client machine");
        // A partitioned world schedules each thread through its client
        // domain's private channel under a domain-local thread id; the
        // monolithic world keeps one global channel and global ids.
        let id = match &self.part {
            Some(p) => p.cdoms[client].resp_txs.len(),
            None => self.threads.len(),
        };
        let (resp_tx, resp_rx) = channel();
        let req_tx = match &self.part {
            Some(p) => p.cdoms[client].req_tx.clone(),
            None => self.req_tx.clone(),
        };
        let handle = std::thread::spawn(move || {
            let mut sys = WorldSys {
                id,
                req_tx,
                resp_rx,
            };
            // Wait for the start signal so thread startup order cannot
            // perturb determinism.
            match sys.resp_rx.recv() {
                Ok(Resp::Unit) => {}
                _ => return,
            }
            // `Finished` must reach the world even when the workload
            // panics — otherwise the event loop waits forever for this
            // thread's next request. The drop guard fires during unwind
            // too; `run` then surfaces the panic from `join`.
            struct Finish {
                id: usize,
                tx: Sender<(usize, Req)>,
            }
            impl Drop for Finish {
                fn drop(&mut self) {
                    let _ = self.tx.send((self.id, Req::Finished));
                }
            }
            let _fin = Finish {
                id,
                tx: sys.req_tx.clone(),
            };
            f(&mut sys);
        });
        if let Some(p) = &mut self.part {
            let cd = &mut p.cdoms[client];
            cd.resp_txs.push(resp_tx.clone());
            cd.live += 1;
        }
        self.threads.push(ThreadState {
            resp_tx,
            handle: Some(handle),
        });
        self.thread_client.push(client);
        self.live_threads += 1;
        id
    }

    /// Runs the world until virtual time reaches `t` (or every thread
    /// finishes). Used by harnesses that reset CPU accounting after a
    /// warm-up interval. [`World::run`] must still be called afterwards.
    pub fn run_until(&mut self, t: SimTime) {
        assert!(
            self.part.is_none(),
            "run_until requires a monolithic world (warm-up harnesses run single-client worlds)"
        );
        if !self.started {
            self.release_threads();
        }
        loop {
            if let Some((tid, resp)) = self.ready.pop_front() {
                self.resume(tid, resp);
                continue;
            }
            if self.live_threads == 0 {
                return;
            }
            match self.doms[0].peek() {
                Some((pt, _)) if pt <= t => {
                    let (at, _, ev) = self.doms[0].pop().expect("peeked");
                    self.handle_event(at, ev);
                }
                _ => return,
            }
        }
    }

    fn release_threads(&mut self) {
        self.started = true;
        for tid in 0..self.threads.len() {
            self.ready.push_back((tid, Resp::Unit));
        }
    }

    /// Runs the world until every workload thread has finished.
    pub fn run(&mut self) {
        if self.part.is_some() {
            self.run_partitioned();
        } else {
            self.run_monolithic();
        }
        for t in &mut self.threads {
            if let Some(h) = t.handle.take() {
                if let Err(payload) = h.join() {
                    // Re-raise a workload panic on the caller's thread so
                    // tests fail loudly instead of reporting half a run.
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }

    /// The historical single-queue engine: strict hand-off between the
    /// event loop and exactly one runnable workload thread.
    fn run_monolithic(&mut self) {
        if !self.started {
            self.release_threads();
        }
        while self.live_threads > 0 {
            if let Some((tid, resp)) = self.ready.pop_front() {
                self.resume(tid, resp);
                continue;
            }
            match self.doms[0].pop() {
                Some((t, _, ev)) => self.handle_event(t, ev),
                None => panic!("deadlock: threads blocked with no pending events"),
            }
        }
    }

    /// Sends `resp` to a blocked thread and services its requests until
    /// it blocks again (or finishes).
    fn resume(&mut self, tid: usize, resp: Resp) {
        let _sp = profile::span(profile::Subsystem::Client);
        if self.threads[tid].resp_tx.send(resp).is_err() {
            return;
        }
        loop {
            let (id, req) = self.req_rx.recv().expect("thread alive");
            debug_assert_eq!(id, tid, "only one thread runnable at a time");
            let ci = self.thread_client[tid];
            match req {
                Req::Now => {
                    let t = self.doms[0].clock();
                    let _ = self.threads[tid].resp_tx.send(Resp::Time(t));
                }
                Req::PollTicket(t) => {
                    let r = self.tickets_done.remove(&t);
                    let _ = self.threads[tid].resp_tx.send(Resp::MaybeChain(r));
                }
                Req::ForgetTicket(t) => {
                    if self.tickets_done.remove(&t).is_none() {
                        self.forgotten.insert(t);
                    }
                    let _ = self.threads[tid].resp_tx.send(Resp::Unit);
                }
                Req::Sleep(d) => {
                    let at = self.doms[0].clock() + d;
                    self.doms[0].push(at, Ev::Wake(tid, Resp::Unit));
                    return;
                }
                Req::ChargeCpu(d) => {
                    let done = self.clients[ci].host.cpu.charge(
                        self.doms[0].clock(),
                        d,
                        CpuCategory::User,
                    );
                    self.doms[0].push(done, Ev::Wake(tid, Resp::Unit));
                    return;
                }
                Req::LocalDisk { bytes, write, seq } => {
                    let done =
                        self.clients[ci]
                            .host
                            .disk_io(self.doms[0].clock(), bytes, write, seq);
                    self.doms[0].push(done, Ev::Wake(tid, Resp::Unit));
                    return;
                }
                Req::Rpc(sj, proc, msg) => {
                    self.start_rpc(ci, sj, Waker::Sync(tid), proc, msg);
                    return;
                }
                Req::RpcAsync(sj, proc, msg) => {
                    let slots = self.cfg.biods;
                    if slots == 0 {
                        // No biods: the process itself performs the RPC,
                        // blocking until completion (write-through
                        // behaviour of "async,0biod").
                        let ticket = self.next_ticket;
                        self.next_ticket += 1;
                        self.clients[ci].async_outstanding += 1;
                        self.ticket_block_thread(tid, ticket);
                        self.start_rpc(ci, sj, Waker::Async(ticket), proc, msg);
                        return;
                    }
                    if self.clients[ci].async_outstanding < slots {
                        let ticket = self.next_ticket;
                        self.next_ticket += 1;
                        self.clients[ci].async_outstanding += 1;
                        self.start_rpc(ci, sj, Waker::Async(ticket), proc, msg);
                        let _ = self.threads[tid].resp_tx.send(Resp::Ticket(ticket));
                    } else {
                        self.clients[ci]
                            .parked_async
                            .push_back((tid, sj, proc, msg));
                        return;
                    }
                }
                Req::AwaitTicket(t) => {
                    if let Some(reply) = self.tickets_done.remove(&t) {
                        let _ = self.threads[tid].resp_tx.send(Resp::Chain(reply));
                    } else {
                        self.ticket_waiters.insert(t, tid);
                        return;
                    }
                }
                Req::WaitAllAsync => {
                    if self.clients[ci].async_outstanding == 0 {
                        let _ = self.threads[tid].resp_tx.send(Resp::Unit);
                    } else {
                        self.clients[ci].wait_all.push(tid);
                        return;
                    }
                }
                Req::Finished => {
                    self.live_threads -= 1;
                    return;
                }
            }
        }
    }

    /// Marks a thread as blocked waiting for the given ticket while also
    /// expecting the `Ticket` response first (0-biod synchronous case).
    fn ticket_block_thread(&mut self, tid: usize, ticket: u64) {
        // The thread will receive Ticket(t) when the RPC completes; it
        // then immediately awaits the ticket, which is already done.
        self.ticket_waiters.insert(ticket, usize::MAX - tid);
    }

    // ----- RPC initiation and completion ---------------------------------

    fn start_rpc(&mut self, ci: usize, sj: usize, waker: Waker, proc: NfsProc, msg: MbufChain) {
        let Ok((xid, MsgKind::Call)) = peek_xid_kind(&msg) else {
            panic!("workload issued a malformed RPC message");
        };
        debug_assert!(
            !self.clients[ci].pending.contains_key(&(sj, xid)),
            "duplicate xid {xid} in flight on client {ci} toward server {sj}"
        );
        self.clients[ci].pending.insert((sj, xid), waker);
        let now = self.doms[0].clock();
        match &mut self.clients[ci].transports[sj] {
            Transport::Udp(u) => {
                let mut actions = std::mem::take(&mut self.udp_actions);
                u.call(now, xid, proc.rto_class(), msg, &mut actions);
                self.apply_udp_actions(ci, sj, &mut actions);
                self.udp_actions = actions;
            }
            Transport::Tcp(_) => {
                // Once-per-record socket/codec work.
                let t = self.clients[ci].host.charge_record(now);
                let framed = frame_record(msg, &mut self.hub.scratch);
                let out = match &mut self.clients[ci].transports[sj] {
                    Transport::Tcp(ts) => ts.client.send(framed, t),
                    _ => unreachable!(),
                };
                self.apply_tcp_out(ci, sj, out, true, t);
            }
        }
    }

    fn apply_udp_actions(&mut self, ci: usize, sj: usize, actions: &mut Vec<UdpAction>) {
        let now = self.doms[0].clock();
        for action in actions.drain(..) {
            match action {
                UdpAction::Send { payload, .. } => {
                    let c = &mut self.clients[ci];
                    let frags = udp_fragments(payload.len(), c.mtus[sj]);
                    let done = c.host.charge_tx(now, &payload, frags, false);
                    let (src, sport) = (c.node, c.sport);
                    self.doms[0].push(
                        done,
                        Ev::Send {
                            src,
                            dst: self.hub.servers[sj].node,
                            proto: ProtoHeader::Udp {
                                sport,
                                dport: NFS_PORT,
                            },
                            payload,
                        },
                    );
                }
                UdpAction::ArmTimer { xid, gen, deadline } => {
                    self.doms[0].push(
                        deadline,
                        Ev::UdpTimer {
                            client: ci,
                            server: sj,
                            xid,
                            gen,
                        },
                    );
                }
                UdpAction::GiveUp { xid } => {
                    self.clients[ci].events.push(ClientEvent {
                        at: now,
                        kind: ClientEventKind::SoftTimeout,
                    });
                    self.finish_rpc(ci, sj, xid, Err(RpcError::TimedOut), now);
                }
                UdpAction::NotResponding { .. } => {
                    self.clients[ci].events.push(ClientEvent {
                        at: now,
                        kind: ClientEventKind::NotResponding,
                    });
                }
                UdpAction::ServerOk { .. } => {
                    self.clients[ci].events.push(ClientEvent {
                        at: now,
                        kind: ClientEventKind::ServerOk,
                    });
                }
            }
        }
    }

    fn apply_tcp_out(
        &mut self,
        ci: usize,
        sj: usize,
        out: renofs_transport::TcpOut,
        from_client: bool,
        at: SimTime,
    ) {
        // Received data first: `out` was produced by the `from_client`
        // side, so its received chunks belong to that side's record
        // reader — RPC replies on the client, requests on the server.
        for chunk in out.received {
            self.tcp_ingest(ci, sj, chunk, from_client, at);
        }
        if let Some((deadline, gen)) = out.arm_timer {
            self.doms[0].push(
                deadline,
                Ev::TcpTimer {
                    client: ci,
                    server: sj,
                    server_side: !from_client,
                    gen,
                },
            );
        }
        for seg in out.segments {
            let host = if from_client {
                &mut self.clients[ci].host
            } else {
                &mut self.hub.servers[sj].host
            };
            let done = host.charge_tcp_tx(at, &seg.payload);
            let csport = self.clients[ci].sport;
            let (sport, dport) = if from_client {
                (csport, NFS_PORT)
            } else {
                (NFS_PORT, csport)
            };
            let (src, dst) = if from_client {
                (self.clients[ci].node, self.hub.servers[sj].node)
            } else {
                (self.hub.servers[sj].node, self.clients[ci].node)
            };
            self.doms[0].push(
                done,
                Ev::Send {
                    src,
                    dst,
                    proto: ProtoHeader::Tcp {
                        sport,
                        dport,
                        seq: seg.seq,
                        ack: seg.ack,
                        window: seg.window,
                        flags: seg.flags,
                    },
                    payload: seg.payload,
                },
            );
        }
    }

    /// Feeds in-order stream data into the record reader of the side
    /// that received it.
    fn tcp_ingest(
        &mut self,
        ci: usize,
        sj: usize,
        chunk: MbufChain,
        receiver_is_client: bool,
        at: SimTime,
    ) {
        let mut records = Vec::new();
        if let Transport::Tcp(t) = &mut self.clients[ci].transports[sj] {
            let reader = if receiver_is_client {
                &mut t.client_reader
            } else {
                &mut t.server_reader
            };
            reader.push(chunk);
            while let Some(rec) = reader.next_record(&mut self.hub.scratch) {
                records.push(rec);
            }
        }
        for rec in records {
            // Once-per-record socket/codec work on the receiving side.
            let t = if receiver_is_client {
                self.clients[ci].host.charge_record(at)
            } else {
                self.hub.servers[sj].host.charge_record(at)
            };
            if receiver_is_client {
                self.client_rpc_reply(ci, sj, rec, t);
            } else {
                self.serve_request(rec, ci, sj, true, t);
            }
        }
    }

    fn client_rpc_reply(&mut self, ci: usize, sj: usize, reply: MbufChain, at: SimTime) {
        let _sp = profile::span(profile::Subsystem::Client);
        profile::count(profile::Subsystem::Client, 1);
        let Ok((xid, MsgKind::Reply)) = peek_xid_kind(&reply) else {
            return;
        };
        // For UDP the transport tracked RTTs itself; over TCP there is
        // no RPC-level bookkeeping to update.
        if let Transport::Udp(u) = &mut self.clients[ci].transports[sj] {
            let mut actions = std::mem::take(&mut self.udp_actions);
            let completed = u.on_reply(at, xid, reply, &mut actions);
            self.apply_udp_actions(ci, sj, &mut actions);
            self.udp_actions = actions;
            let Some(call) = completed else {
                return;
            };
            self.finish_rpc(ci, sj, xid, Ok(call.reply), at);
        } else {
            self.finish_rpc(ci, sj, xid, Ok(reply), at);
        }
    }

    fn finish_rpc(&mut self, ci: usize, sj: usize, xid: u32, result: RpcResult, at: SimTime) {
        let Some(waker) = self.clients[ci].pending.remove(&(sj, xid)) else {
            return;
        };
        match waker {
            Waker::Sync(tid) => {
                self.doms[0].push(at, Ev::Wake(tid, Resp::Chain(result)));
            }
            Waker::Async(ticket) => {
                self.doms[0].push(
                    at,
                    Ev::AsyncDone {
                        client: ci,
                        ticket,
                        result,
                    },
                );
            }
        }
    }

    /// Admits an RPC request to the nfsd pool: service starts now if a
    /// daemon context is free, otherwise the request queues FIFO.
    fn serve_request(
        &mut self,
        request: MbufChain,
        client: usize,
        sj: usize,
        tcp: bool,
        at: SimTime,
    ) {
        if self.cfg.nfsds > 0 {
            let srv = &mut self.hub.servers[sj];
            if srv.nfsd_busy >= self.cfg.nfsds {
                srv.nfsd_queue.push_back(QueuedRpc {
                    request,
                    client,
                    tcp,
                    arrival: at,
                });
                srv.nfsd_stats.queued += 1;
                srv.nfsd_stats.peak_queue = srv.nfsd_stats.peak_queue.max(srv.nfsd_queue.len());
                return;
            }
            srv.nfsd_busy += 1;
        }
        self.nfsd_serve(request, client, sj, tcp, at, at);
    }

    /// One nfsd daemon services a request: runs the server code, charges
    /// CPU and disk, and schedules the reply transmission.
    fn nfsd_serve(
        &mut self,
        request: MbufChain,
        client: usize,
        sj: usize,
        tcp: bool,
        arrival: SimTime,
        start: SimTime,
    ) {
        let _sp = profile::span(profile::Subsystem::Server);
        profile::count(profile::Subsystem::Server, 1);
        self.hub.servers[sj]
            .nfsd_stats
            .queue_delays_ms
            .push(start.since(arrival).as_millis_f64());
        let (reply, cost) =
            self.hub.servers[sj]
                .server
                .service_from(start, &request, client as u32);
        if reply.is_empty() {
            // Unparseable request: the daemon is immediately free again.
            if self.cfg.nfsds > 0 {
                self.doms[0].push(start, Ev::NfsdDone { server: sj });
            }
            return;
        }
        let host = &mut self.hub.servers[sj].host;
        let mut t = host.cpu.charge(
            start,
            costs::NFS_SERVICE_FIXED
                + costs::CACHE_SEARCH_STEP * cost.cache_steps
                + costs::DIR_SCAN_ENTRY * cost.dir_scan_entries,
            CpuCategory::Nfs,
        );
        if cost.bytes_copied > 0 {
            t = host.cpu.charge(
                t,
                costs::COPY_PER_BYTE * cost.bytes_copied,
                CpuCategory::BufCopy,
            );
        }
        for bytes in &cost.disk_reads {
            t = host.disk_io(t, *bytes, false, false);
        }
        let mut seq = false;
        for bytes in &cost.disk_writes {
            // Data blocks stream sequentially; metadata seeks.
            t = host.disk_io(t, *bytes, true, seq && *bytes > 512);
            seq = true;
        }
        let done;
        if tcp {
            let t = self.hub.servers[sj].host.charge_record(t);
            let framed = frame_record(reply, &mut self.hub.scratch);
            let out = match &mut self.clients[client].transports[sj] {
                Transport::Tcp(ts) => ts.server.send(framed, t),
                _ => unreachable!(),
            };
            self.apply_tcp_out(client, sj, out, false, t);
            done = t;
        } else {
            let c = &self.clients[client];
            let frags = udp_fragments(reply.len(), c.mtus[sj]);
            let (dst, dport) = (c.node, c.sport);
            done = self.hub.servers[sj].host.charge_tx(t, &reply, frags, false);
            self.doms[0].push(
                done,
                Ev::Send {
                    src: self.hub.servers[sj].node,
                    dst,
                    proto: ProtoHeader::Udp {
                        sport: NFS_PORT,
                        dport,
                    },
                    payload: reply,
                },
            );
        }
        self.hub.servers[sj].nfsd_stats.served += 1;
        self.hub.servers[sj]
            .nfsd_stats
            .service_ms
            .add(done.since(start).as_millis_f64());
        if self.cfg.nfsds > 0 {
            self.doms[0].push(done, Ev::NfsdDone { server: sj });
        }
    }

    // ----- event handling -------------------------------------------------

    fn handle_event(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Wake(tid, resp) => self.ready.push_back((tid, resp)),
            Ev::AsyncDone {
                client,
                ticket,
                result,
            } => self.async_done(client, ticket, result),
            Ev::UdpTimer {
                client,
                server,
                xid,
                gen,
            } => {
                if let Transport::Udp(u) = &mut self.clients[client].transports[server] {
                    let mut actions = std::mem::take(&mut self.udp_actions);
                    u.on_timer(now, xid, gen, &mut actions);
                    self.apply_udp_actions(client, server, &mut actions);
                    self.udp_actions = actions;
                }
            }
            Ev::TcpTimer {
                client,
                server,
                server_side,
                gen,
            } => {
                let out = match &mut self.clients[client].transports[server] {
                    Transport::Tcp(t) => {
                        if server_side {
                            t.server.on_timer(gen, now)
                        } else {
                            t.client.on_timer(gen, now)
                        }
                    }
                    _ => return,
                };
                self.apply_tcp_out(client, server, out, !server_side, now);
            }
            Ev::Send {
                src,
                dst,
                proto,
                payload,
            } => {
                let _sp = profile::span(profile::Subsystem::Links);
                let id = self.hub.net.alloc_dgram_id();
                let mut out = std::mem::take(&mut self.hub.net_out);
                self.hub.net.send_into(
                    now,
                    Datagram {
                        id,
                        src,
                        dst,
                        proto,
                        payload,
                    },
                    &mut out,
                );
                self.absorb_net(&mut out);
                self.hub.net_out = out;
            }
            Ev::Net(nev) => {
                let _sp = profile::span(profile::Subsystem::Links);
                let mut out = std::mem::take(&mut self.hub.net_out);
                self.hub.net.handle_into(now, nev, &mut out);
                self.absorb_net(&mut out);
                self.hub.net_out = out;
            }
            Ev::NfsdDone { server } => {
                let srv = &mut self.hub.servers[server];
                srv.nfsd_busy = srv.nfsd_busy.saturating_sub(1);
                if srv.up {
                    if let Some(q) = srv.nfsd_queue.pop_front() {
                        srv.nfsd_busy += 1;
                        self.nfsd_serve(q.request, q.client, server, q.tcp, q.arrival, now);
                    }
                }
            }
            Ev::ServerCrash { server, downtime } => {
                let srv = &mut self.hub.servers[server];
                srv.up = false;
                // Requests waiting for a daemon die with the machine;
                // the clients retransmit them after the reboot.
                srv.nfsd_queue.clear();
                for c in &mut self.clients {
                    c.events.push(ClientEvent {
                        at: now,
                        kind: ClientEventKind::ServerCrashed,
                    });
                }
                self.doms[0].push(now + downtime, Ev::ServerReboot { server });
            }
            Ev::ServerReboot { server } => {
                // Volatile state (name cache, buffer cache, dup cache)
                // is lost; the on-disk file system survives.
                let srv = &mut self.hub.servers[server];
                srv.server.reboot();
                srv.up = true;
                for c in &mut self.clients {
                    c.events.push(ClientEvent {
                        at: now,
                        kind: ClientEventKind::ServerRebooted,
                    });
                }
            }
            Ev::Note { .. } => {
                unreachable!("console notes are scheduled only in partitioned worlds")
            }
        }
    }

    fn absorb_net(&mut self, out: &mut NetOutput) {
        profile::count(profile::Subsystem::Links, out.events.len() as u64);
        for (t, ev) in out.events.drain(..) {
            self.doms[0].push(t, Ev::Net(ev));
        }
        for d in out.delivered.drain(..) {
            self.on_delivery(d);
        }
    }

    fn on_delivery(&mut self, d: Delivery) {
        let now = self.doms[0].clock();
        let at_server = self.hub.node_server[d.host.0];
        // A crashed host receives nothing: requests (and TCP segments)
        // addressed to it die on arrival and the client must retransmit.
        if let Some(sj) = at_server {
            if !self.hub.servers[sj].up {
                return;
            }
        }
        // Which client machine and which server this delivery concerns:
        // the datagram's source identifies the other endpoint.
        let (ci, sj) = if let Some(sj) = at_server {
            (self.hub.node_client[d.dgram.src.0], Some(sj))
        } else {
            (
                self.hub.node_client[d.host.0],
                self.hub.node_server[d.dgram.src.0],
            )
        };
        let (Some(ci), Some(sj)) = (ci, sj) else {
            return; // not a client<->server exchange this world models
        };
        let len = d.dgram.payload.len();
        let frags = d.frags.max(1);
        let at_server = at_server.is_some();
        match d.dgram.proto {
            ProtoHeader::Udp { .. } => {
                if at_server {
                    let t = self.hub.servers[sj].host.charge_rx(now, len, frags, false);
                    self.serve_request(d.dgram.payload, ci, sj, false, t);
                } else {
                    let t = self.clients[ci].host.charge_rx(now, len, frags, false);
                    self.client_rpc_reply(ci, sj, d.dgram.payload, t);
                }
            }
            ProtoHeader::Tcp {
                seq,
                ack,
                window,
                flags,
                ..
            } => {
                let host = if at_server {
                    &mut self.hub.servers[sj].host
                } else {
                    &mut self.clients[ci].host
                };
                let t = host.charge_tcp_rx(now, len);
                let out = match &mut self.clients[ci].transports[sj] {
                    Transport::Tcp(ts) => {
                        let conn = if at_server {
                            &mut ts.server
                        } else {
                            &mut ts.client
                        };
                        conn.on_segment(seq, ack, window, flags, d.dgram.payload, now)
                    }
                    _ => return,
                };
                self.apply_tcp_out(ci, sj, out, !at_server, t);
            }
        }
    }

    fn async_done(&mut self, ci: usize, ticket: u64, result: RpcResult) {
        self.clients[ci].async_outstanding = self.clients[ci].async_outstanding.saturating_sub(1);
        if self.forgotten.remove(&ticket) {
            // Dropped interest; discard the reply.
        } else if let Some(holder) = self.ticket_waiters.remove(&ticket) {
            if holder > usize::MAX / 2 {
                // 0-biod synchronous case: the thread is still waiting
                // for its Ticket response.
                let tid = usize::MAX - holder;
                self.tickets_done.insert(ticket, result);
                self.ready.push_back((tid, Resp::Ticket(ticket)));
            } else {
                self.ready.push_back((holder, Resp::Chain(result)));
            }
        } else {
            self.tickets_done.insert(ticket, result);
        }
        // A slot freed: admit a parked async request from this client.
        if let Some((tid, sj, proc, msg)) = self.clients[ci].parked_async.pop_front() {
            let t = self.next_ticket;
            self.next_ticket += 1;
            self.clients[ci].async_outstanding += 1;
            self.start_rpc(ci, sj, Waker::Async(t), proc, msg);
            self.ready.push_back((tid, Resp::Ticket(t)));
        }
        if self.clients[ci].async_outstanding == 0 {
            for tid in self.clients[ci].wait_all.drain(..) {
                self.ready.push_back((tid, Resp::Unit));
            }
        }
    }

    // ----- the partitioned (PDES) engine ----------------------------------

    /// Runs a partitioned world to completion: every client machine and
    /// the hub execute rounds against their private queues, synchronized
    /// by a conservative barrier whose lookahead is the boundary links'
    /// propagation delay. The round schedule is a pure function of queue
    /// state, so every `sim_threads` value executes the identical event
    /// order and the run is byte-identical at any thread count.
    fn run_partitioned(&mut self) {
        assert!(!self.started, "a partitioned world runs exactly once");
        self.started = true;
        let n = self.clients.len();
        let workers = self.cfg.sim_threads.max(1) - 1;
        let part = self.part.as_mut().expect("partitioned world");
        let cdoms = &mut part.cdoms;
        // Seed every domain's ready FIFO in spawn order; round 0 releases
        // the threads exactly as `release_threads` does monolithically.
        for cd in cdoms.iter_mut() {
            for tid in 0..cd.resp_txs.len() {
                cd.ready.push_back((tid, Resp::Unit));
            }
        }
        let la_up: Vec<SimDuration> = cdoms.iter().map(|c| c.la_up).collect();
        let la_dn: Vec<SimDuration> = cdoms.iter().map(|c| c.la_dn).collect();
        let (hub_doms, client_dqs) = self.doms.split_at_mut(1);
        let hub_dq = &mut hub_doms[0];
        let hub = &mut self.hub;
        let finish = if workers == 0 {
            let mut exec = SeqExec {
                rts: &mut self.clients,
                cds: cdoms,
                dqs: client_dqs,
                reports: Vec::new(),
                to_hub: Vec::new(),
            };
            pdes_coordinate(hub, hub_dq, &la_up, &la_dn, &mut exec)
        } else {
            let nworkers = workers.min(n);
            std::thread::scope(|s| {
                let (done_tx, done_rx) = channel::<WorkerDone>();
                let mut go_txs = Vec::with_capacity(nworkers);
                let mut worker_of = Vec::with_capacity(n);
                let mut rts: &mut [ClientRt] = &mut self.clients;
                let mut cds: &mut [ClientDom] = cdoms;
                let mut dqs: &mut [DomainQ<Ev>] = client_dqs;
                let mut base = 0usize;
                for w in 0..nworkers {
                    // Contiguous chunks, remainder spread over the front.
                    let take = (n - base).div_ceil(nworkers - w);
                    let (r1, r2) = rts.split_at_mut(take);
                    let (c1, c2) = cds.split_at_mut(take);
                    let (d1, d2) = dqs.split_at_mut(take);
                    rts = r2;
                    cds = c2;
                    dqs = d2;
                    let (go_tx, go_rx) = channel::<WorkerGo>();
                    let dtx = done_tx.clone();
                    s.spawn(move || pdes_worker(base, r1, c1, d1, go_rx, dtx));
                    go_txs.push(go_tx);
                    worker_of.extend(std::iter::repeat_n(w, take));
                    base += take;
                }
                let mut exec = ParExec {
                    go_txs,
                    done_rx,
                    worker_of,
                    buckets: (0..nworkers).map(|_| Vec::new()).collect(),
                    outstanding: 0,
                };
                pdes_coordinate(hub, hub_dq, &la_up, &la_dn, &mut exec)
                // Dropping `exec` closes the Go channels; the workers'
                // recv loops end and the scope joins them.
            })
        };
        part.finish = finish;
    }
}

// ----- partitioned-engine machinery (module level so worker threads can
// borrow disjoint client chunks without touching `World`) ----------------

/// A cross-domain message: arrival time, canonical event key (allocated
/// by the *creator* domain), and the event itself. The receiving queue
/// orders by `(time, key)`, so arrival order between messages is
/// irrelevant — which is what makes worker completion order harmless.
type Msg = (SimTime, u64, Ev);

/// What a client domain reports back at the end of a round it ran.
struct ClientReport {
    /// Earliest pending local event after the round (`None` = drained).
    eot: Option<SimTime>,
    /// Workload threads still running on this client.
    live: usize,
    /// Latest thread-finish time seen so far on this client.
    last_finish: SimTime,
}

/// One scheduled client's work order for a round: deliver `msgs` into
/// the local queue, then execute every local event strictly below
/// `bound`. The coordinator only builds a job for clients whose
/// effective earliest work lies below their bound — everyone else would
/// provably pop nothing, so the executors never touch them and their
/// last report stands.
struct RoundJob {
    ci: usize,
    bound: SimTime,
    msgs: Vec<Msg>,
}

/// One round's work orders for a worker (only its own clients').
struct WorkerGo {
    jobs: Vec<RoundJob>,
}

/// A worker's round result: a report per job plus every message its
/// clients emitted toward the hub. Merge order between workers is
/// irrelevant: reports are keyed by client and messages merge by
/// `(time, key)` in the hub queue.
struct WorkerDone {
    reports: Vec<(usize, ClientReport)>,
    to_hub: Vec<Msg>,
}

/// Mutable view of one client machine's domain for one round. The
/// methods mirror the monolithic engine's client half exactly — same
/// transport calls in the same order against per-domain state.
struct ClientCtx<'a> {
    ci: usize,
    rt: &'a mut ClientRt,
    cd: &'a mut ClientDom,
    dq: &'a mut DomainQ<Ev>,
    /// Cross-domain emissions toward the hub, collected this round.
    emit: &'a mut Vec<Msg>,
}

impl ClientCtx<'_> {
    /// Delivers the round's incoming messages, then executes every local
    /// event strictly below `bound`, interleaving thread resumes exactly
    /// like the monolithic loop (ready FIFO drains before each pop).
    fn round(&mut self, bound: SimTime, msgs: &mut Vec<Msg>) -> ClientReport {
        for (t, key, ev) in msgs.drain(..) {
            self.dq.push_incoming(t, key, ev);
        }
        self.drain_ready();
        loop {
            match self.dq.peek() {
                Some((t, _)) if t < bound => {
                    let (at, _, ev) = self.dq.pop().expect("peeked");
                    debug_assert_eq!(at, t);
                    self.handle_event(at, ev);
                    self.drain_ready();
                }
                _ => break,
            }
        }
        ClientReport {
            eot: self.dq.peek().map(|(t, _)| t),
            live: self.cd.live,
            last_finish: self.cd.last_finish,
        }
    }

    fn drain_ready(&mut self) {
        while let Some((tid, resp)) = self.cd.ready.pop_front() {
            self.resume(tid, resp);
        }
    }

    /// Per-domain copy of the monolithic `resume`: strict hand-off with
    /// one runnable workload thread, domain-local ids and tickets.
    fn resume(&mut self, tid: usize, resp: Resp) {
        let _sp = profile::span(profile::Subsystem::Client);
        if self.cd.resp_txs[tid].send(resp).is_err() {
            return;
        }
        loop {
            let (id, req) = self.cd.req_rx.recv().expect("thread alive");
            debug_assert_eq!(id, tid, "only one thread runnable per domain");
            match req {
                Req::Now => {
                    let t = self.dq.clock();
                    let _ = self.cd.resp_txs[tid].send(Resp::Time(t));
                }
                Req::PollTicket(t) => {
                    let r = self.cd.tickets_done.remove(&t);
                    let _ = self.cd.resp_txs[tid].send(Resp::MaybeChain(r));
                }
                Req::ForgetTicket(t) => {
                    if self.cd.tickets_done.remove(&t).is_none() {
                        self.cd.forgotten.insert(t);
                    }
                    let _ = self.cd.resp_txs[tid].send(Resp::Unit);
                }
                Req::Sleep(d) => {
                    let at = self.dq.clock() + d;
                    self.dq.push(at, Ev::Wake(tid, Resp::Unit));
                    return;
                }
                Req::ChargeCpu(d) => {
                    let done = self
                        .rt
                        .host
                        .cpu
                        .charge(self.dq.clock(), d, CpuCategory::User);
                    self.dq.push(done, Ev::Wake(tid, Resp::Unit));
                    return;
                }
                Req::LocalDisk { bytes, write, seq } => {
                    let done = self.rt.host.disk_io(self.dq.clock(), bytes, write, seq);
                    self.dq.push(done, Ev::Wake(tid, Resp::Unit));
                    return;
                }
                Req::Rpc(sj, proc, msg) => {
                    self.start_rpc(sj, Waker::Sync(tid), proc, msg);
                    return;
                }
                Req::RpcAsync(sj, proc, msg) => {
                    let slots = self.cd.biods;
                    if slots == 0 {
                        let ticket = self.cd.next_ticket;
                        self.cd.next_ticket += 1;
                        self.rt.async_outstanding += 1;
                        self.cd.ticket_waiters.insert(ticket, usize::MAX - tid);
                        self.start_rpc(sj, Waker::Async(ticket), proc, msg);
                        return;
                    }
                    if self.rt.async_outstanding < slots {
                        let ticket = self.cd.next_ticket;
                        self.cd.next_ticket += 1;
                        self.rt.async_outstanding += 1;
                        self.start_rpc(sj, Waker::Async(ticket), proc, msg);
                        let _ = self.cd.resp_txs[tid].send(Resp::Ticket(ticket));
                    } else {
                        self.rt.parked_async.push_back((tid, sj, proc, msg));
                        return;
                    }
                }
                Req::AwaitTicket(t) => {
                    if let Some(reply) = self.cd.tickets_done.remove(&t) {
                        let _ = self.cd.resp_txs[tid].send(Resp::Chain(reply));
                    } else {
                        self.cd.ticket_waiters.insert(t, tid);
                        return;
                    }
                }
                Req::WaitAllAsync => {
                    if self.rt.async_outstanding == 0 {
                        let _ = self.cd.resp_txs[tid].send(Resp::Unit);
                    } else {
                        self.rt.wait_all.push(tid);
                        return;
                    }
                }
                Req::Finished => {
                    self.cd.live -= 1;
                    self.cd.last_finish = self.cd.last_finish.max(self.dq.clock());
                    return;
                }
            }
        }
    }

    fn start_rpc(&mut self, sj: usize, waker: Waker, proc: NfsProc, msg: MbufChain) {
        let Ok((xid, MsgKind::Call)) = peek_xid_kind(&msg) else {
            panic!("workload issued a malformed RPC message");
        };
        debug_assert!(
            !self.rt.pending.contains_key(&(sj, xid)),
            "duplicate xid {xid} in flight on client {} toward server {sj}",
            self.ci
        );
        self.rt.pending.insert((sj, xid), waker);
        let now = self.dq.clock();
        match &mut self.rt.transports[sj] {
            Transport::Udp(u) => {
                let mut actions = std::mem::take(&mut self.cd.udp_actions);
                u.call(now, xid, proc.rto_class(), msg, &mut actions);
                self.apply_udp_actions(sj, &mut actions);
                self.cd.udp_actions = actions;
            }
            Transport::Tcp(_) => unreachable!("TCP worlds are never partitioned"),
        }
    }

    fn apply_udp_actions(&mut self, sj: usize, actions: &mut Vec<UdpAction>) {
        let now = self.dq.clock();
        for action in actions.drain(..) {
            match action {
                UdpAction::Send { payload, .. } => {
                    let frags = udp_fragments(payload.len(), self.rt.mtus[sj]);
                    let done = self.rt.host.charge_tx(now, &payload, frags, false);
                    self.dq.push(
                        done,
                        Ev::Send {
                            src: self.rt.node,
                            dst: self.cd.server_nodes[sj],
                            proto: ProtoHeader::Udp {
                                sport: self.rt.sport,
                                dport: NFS_PORT,
                            },
                            payload,
                        },
                    );
                }
                UdpAction::ArmTimer { xid, gen, deadline } => {
                    self.dq.push(
                        deadline,
                        Ev::UdpTimer {
                            client: self.ci,
                            server: sj,
                            xid,
                            gen,
                        },
                    );
                }
                UdpAction::GiveUp { xid } => {
                    self.rt.events.push(ClientEvent {
                        at: now,
                        kind: ClientEventKind::SoftTimeout,
                    });
                    self.finish_rpc(sj, xid, Err(RpcError::TimedOut), now);
                }
                UdpAction::NotResponding { .. } => {
                    self.rt.events.push(ClientEvent {
                        at: now,
                        kind: ClientEventKind::NotResponding,
                    });
                }
                UdpAction::ServerOk { .. } => {
                    self.rt.events.push(ClientEvent {
                        at: now,
                        kind: ClientEventKind::ServerOk,
                    });
                }
            }
        }
    }

    fn client_rpc_reply(&mut self, sj: usize, reply: MbufChain, at: SimTime) {
        let _sp = profile::span(profile::Subsystem::Client);
        profile::count(profile::Subsystem::Client, 1);
        let Ok((xid, MsgKind::Reply)) = peek_xid_kind(&reply) else {
            return;
        };
        match &mut self.rt.transports[sj] {
            Transport::Udp(u) => {
                let mut actions = std::mem::take(&mut self.cd.udp_actions);
                let completed = u.on_reply(at, xid, reply, &mut actions);
                self.apply_udp_actions(sj, &mut actions);
                self.cd.udp_actions = actions;
                let Some(call) = completed else {
                    return;
                };
                self.finish_rpc(sj, xid, Ok(call.reply), at);
            }
            Transport::Tcp(_) => unreachable!("TCP worlds are never partitioned"),
        }
    }

    fn finish_rpc(&mut self, sj: usize, xid: u32, result: RpcResult, at: SimTime) {
        let Some(waker) = self.rt.pending.remove(&(sj, xid)) else {
            return;
        };
        match waker {
            Waker::Sync(tid) => {
                self.dq.push(at, Ev::Wake(tid, Resp::Chain(result)));
            }
            Waker::Async(ticket) => {
                self.dq.push(
                    at,
                    Ev::AsyncDone {
                        client: self.ci,
                        ticket,
                        result,
                    },
                );
            }
        }
    }

    fn async_done(&mut self, ticket: u64, result: RpcResult) {
        self.rt.async_outstanding = self.rt.async_outstanding.saturating_sub(1);
        if self.cd.forgotten.remove(&ticket) {
            // Dropped interest; discard the reply.
        } else if let Some(holder) = self.cd.ticket_waiters.remove(&ticket) {
            if holder > usize::MAX / 2 {
                // 0-biod synchronous case: the thread is still waiting
                // for its Ticket response.
                let tid = usize::MAX - holder;
                self.cd.tickets_done.insert(ticket, result);
                self.cd.ready.push_back((tid, Resp::Ticket(ticket)));
            } else {
                self.cd.ready.push_back((holder, Resp::Chain(result)));
            }
        } else {
            self.cd.tickets_done.insert(ticket, result);
        }
        // A slot freed: admit a parked async request from this client.
        if let Some((tid, sj, proc, msg)) = self.rt.parked_async.pop_front() {
            let t = self.cd.next_ticket;
            self.cd.next_ticket += 1;
            self.rt.async_outstanding += 1;
            self.start_rpc(sj, Waker::Async(t), proc, msg);
            self.cd.ready.push_back((tid, Resp::Ticket(t)));
        }
        if self.rt.async_outstanding == 0 {
            for tid in self.rt.wait_all.drain(..) {
                self.cd.ready.push_back((tid, Resp::Unit));
            }
        }
    }

    fn handle_event(&mut self, now: SimTime, ev: Ev) {
        match ev {
            Ev::Wake(tid, resp) => self.cd.ready.push_back((tid, resp)),
            Ev::AsyncDone { ticket, result, .. } => self.async_done(ticket, result),
            Ev::UdpTimer {
                server, xid, gen, ..
            } => {
                if let Transport::Udp(u) = &mut self.rt.transports[server] {
                    let mut actions = std::mem::take(&mut self.cd.udp_actions);
                    u.on_timer(now, xid, gen, &mut actions);
                    self.apply_udp_actions(server, &mut actions);
                    self.cd.udp_actions = actions;
                }
            }
            Ev::Send {
                src,
                dst,
                proto,
                payload,
            } => {
                let _sp = profile::span(profile::Subsystem::Links);
                let id = self.cd.access.alloc_dgram_id();
                let mut out = std::mem::take(&mut self.cd.net_out);
                self.cd.access.send_into(
                    now,
                    Datagram {
                        id,
                        src,
                        dst,
                        proto,
                        payload,
                    },
                    &mut out,
                );
                profile::count(profile::Subsystem::Links, out.events.len() as u64);
                // Every uplink emission lands in the hub domain; the
                // creator key preserves deterministic merge order there.
                for (t, nev) in out.events.drain(..) {
                    let key = self.dq.alloc_key();
                    self.emit.push((t, key, Ev::Net(nev)));
                }
                debug_assert!(out.delivered.is_empty(), "uplink send cannot deliver");
                self.cd.net_out = out;
            }
            Ev::Net(nev) => {
                let _sp = profile::span(profile::Subsystem::Links);
                let mut out = std::mem::take(&mut self.cd.net_out);
                self.cd.access.handle_into(now, nev, &mut out);
                profile::count(profile::Subsystem::Links, out.events.len() as u64);
                // Reassembly timers are domain-local.
                for (t, nev) in out.events.drain(..) {
                    self.dq.push(t, Ev::Net(nev));
                }
                for d in out.delivered.drain(..) {
                    debug_assert_eq!(d.host, self.rt.node, "delivery left the client domain");
                    let len = d.dgram.payload.len();
                    let frags = d.frags.max(1);
                    // Which shard this reply came back from: the
                    // datagram's source is that server's node.
                    let sj = self
                        .cd
                        .server_nodes
                        .iter()
                        .position(|&s| s == d.dgram.src)
                        .expect("reply source is a known server");
                    match d.dgram.proto {
                        ProtoHeader::Udp { .. } => {
                            let t = self.rt.host.charge_rx(now, len, frags, false);
                            self.client_rpc_reply(sj, d.dgram.payload, t);
                        }
                        ProtoHeader::Tcp { .. } => {
                            unreachable!("TCP worlds are never partitioned")
                        }
                    }
                }
                self.cd.net_out = out;
            }
            Ev::Note { kind } => self.rt.events.push(ClientEvent { at: now, kind }),
            Ev::TcpTimer { .. }
            | Ev::NfsdDone { .. }
            | Ev::ServerCrash { .. }
            | Ev::ServerReboot { .. } => {
                unreachable!("hub event in a client domain")
            }
        }
    }
}

impl Hub {
    /// Executes every hub event strictly below `bound`. Emissions whose
    /// network event lands on a client machine's node are routed to the
    /// flat `emits` list instead of the local queue.
    fn round(&mut self, dq: &mut DomainQ<Ev>, bound: SimTime, emits: &mut Vec<(usize, Msg)>) {
        loop {
            match dq.peek() {
                Some((t, _)) if t < bound => {
                    let (at, _, ev) = dq.pop().expect("peeked");
                    debug_assert_eq!(at, t);
                    self.handle_event(dq, at, ev, emits);
                }
                _ => return,
            }
        }
    }

    fn handle_event(
        &mut self,
        dq: &mut DomainQ<Ev>,
        now: SimTime,
        ev: Ev,
        emits: &mut Vec<(usize, Msg)>,
    ) {
        match ev {
            Ev::Send {
                src,
                dst,
                proto,
                payload,
            } => {
                let _sp = profile::span(profile::Subsystem::Links);
                let id = self.net.alloc_dgram_id();
                let mut out = std::mem::take(&mut self.net_out);
                self.net.send_into(
                    now,
                    Datagram {
                        id,
                        src,
                        dst,
                        proto,
                        payload,
                    },
                    &mut out,
                );
                self.absorb_net(dq, now, &mut out, emits);
                self.net_out = out;
            }
            Ev::Net(nev) => {
                let _sp = profile::span(profile::Subsystem::Links);
                let mut out = std::mem::take(&mut self.net_out);
                self.net.handle_into(now, nev, &mut out);
                self.absorb_net(dq, now, &mut out, emits);
                self.net_out = out;
            }
            Ev::NfsdDone { server } => {
                let srv = &mut self.servers[server];
                srv.nfsd_busy = srv.nfsd_busy.saturating_sub(1);
                if srv.up {
                    if let Some(q) = srv.nfsd_queue.pop_front() {
                        debug_assert!(!q.tcp, "TCP worlds are never partitioned");
                        srv.nfsd_busy += 1;
                        self.nfsd_serve(dq, q.request, q.client, server, q.arrival, now);
                    }
                }
            }
            Ev::ServerCrash { server, downtime } => {
                let srv = &mut self.servers[server];
                srv.up = false;
                // Requests waiting for a daemon die with the machine; the
                // clients retransmit them after the reboot. Client console
                // notes were pre-scheduled in each client domain.
                srv.nfsd_queue.clear();
                dq.push(now + downtime, Ev::ServerReboot { server });
            }
            Ev::ServerReboot { server } => {
                let srv = &mut self.servers[server];
                srv.server.reboot();
                srv.up = true;
            }
            Ev::Wake(..)
            | Ev::AsyncDone { .. }
            | Ev::UdpTimer { .. }
            | Ev::TcpTimer { .. }
            | Ev::Note { .. } => unreachable!("client event in the hub domain"),
        }
    }

    fn absorb_net(
        &mut self,
        dq: &mut DomainQ<Ev>,
        now: SimTime,
        out: &mut NetOutput,
        emits: &mut Vec<(usize, Msg)>,
    ) {
        profile::count(profile::Subsystem::Links, out.events.len() as u64);
        for (t, ev) in out.events.drain(..) {
            let node = self.net.event_node(&ev);
            match self.node_client[node.0] {
                Some(ci) => {
                    let key = dq.alloc_key();
                    emits.push((ci, (t, key, Ev::Net(ev))));
                }
                None => {
                    dq.push(t, Ev::Net(ev));
                }
            }
        }
        for d in out.delivered.drain(..) {
            self.on_delivery(dq, now, d);
        }
    }

    fn on_delivery(&mut self, dq: &mut DomainQ<Ev>, now: SimTime, d: Delivery) {
        let Some(sj) = self.node_server[d.host.0] else {
            debug_assert!(
                false,
                "client-bound fragments cross domains before reassembly"
            );
            return;
        };
        // A crashed server receives nothing: requests addressed to it die
        // on arrival and the client must retransmit.
        if !self.servers[sj].up {
            return;
        }
        let Some(ci) = self.node_client[d.dgram.src.0] else {
            return; // not from any client machine
        };
        let len = d.dgram.payload.len();
        let frags = d.frags.max(1);
        match d.dgram.proto {
            ProtoHeader::Udp { .. } => {
                let t = self.servers[sj].host.charge_rx(now, len, frags, false);
                self.serve_request(dq, d.dgram.payload, ci, sj, t);
            }
            ProtoHeader::Tcp { .. } => unreachable!("TCP worlds are never partitioned"),
        }
    }

    fn serve_request(
        &mut self,
        dq: &mut DomainQ<Ev>,
        request: MbufChain,
        client: usize,
        sj: usize,
        at: SimTime,
    ) {
        if self.nfsds > 0 {
            let srv = &mut self.servers[sj];
            if srv.nfsd_busy >= self.nfsds {
                srv.nfsd_queue.push_back(QueuedRpc {
                    request,
                    client,
                    tcp: false,
                    arrival: at,
                });
                srv.nfsd_stats.queued += 1;
                srv.nfsd_stats.peak_queue = srv.nfsd_stats.peak_queue.max(srv.nfsd_queue.len());
                return;
            }
            srv.nfsd_busy += 1;
        }
        self.nfsd_serve(dq, request, client, sj, at, at);
    }

    fn nfsd_serve(
        &mut self,
        dq: &mut DomainQ<Ev>,
        request: MbufChain,
        client: usize,
        sj: usize,
        arrival: SimTime,
        start: SimTime,
    ) {
        let _sp = profile::span(profile::Subsystem::Server);
        profile::count(profile::Subsystem::Server, 1);
        let srv = &mut self.servers[sj];
        srv.nfsd_stats
            .queue_delays_ms
            .push(start.since(arrival).as_millis_f64());
        let (reply, cost) = srv.server.service_from(start, &request, client as u32);
        if reply.is_empty() {
            // Unparseable request: the daemon is immediately free again.
            if self.nfsds > 0 {
                dq.push(start, Ev::NfsdDone { server: sj });
            }
            return;
        }
        let host = &mut srv.host;
        let mut t = host.cpu.charge(
            start,
            costs::NFS_SERVICE_FIXED
                + costs::CACHE_SEARCH_STEP * cost.cache_steps
                + costs::DIR_SCAN_ENTRY * cost.dir_scan_entries,
            CpuCategory::Nfs,
        );
        if cost.bytes_copied > 0 {
            t = host.cpu.charge(
                t,
                costs::COPY_PER_BYTE * cost.bytes_copied,
                CpuCategory::BufCopy,
            );
        }
        for bytes in &cost.disk_reads {
            t = host.disk_io(t, *bytes, false, false);
        }
        let mut seq = false;
        for bytes in &cost.disk_writes {
            // Data blocks stream sequentially; metadata seeks.
            t = host.disk_io(t, *bytes, true, seq && *bytes > 512);
            seq = true;
        }
        let m = &self.metas[client];
        let frags = udp_fragments(reply.len(), m.mtus[sj]);
        let done = srv.host.charge_tx(t, &reply, frags, false);
        dq.push(
            done,
            Ev::Send {
                src: srv.node,
                dst: m.node,
                proto: ProtoHeader::Udp {
                    sport: NFS_PORT,
                    dport: m.sport,
                },
                payload: reply,
            },
        );
        srv.nfsd_stats.served += 1;
        srv.nfsd_stats
            .service_ms
            .add(done.since(start).as_millis_f64());
        if self.nfsds > 0 {
            dq.push(done, Ev::NfsdDone { server: sj });
        }
    }
}

/// How the coordinator hands a round to the client domains: `dispatch`
/// starts the scheduled jobs (inline or by messaging workers),
/// `collect` returns one report per job plus the hub-bound messages.
/// Splitting the two lets the hub's own round overlap the workers'.
trait RoundExec {
    /// Runs (or ships) the round's jobs. The sequential executor drains
    /// each job's messages but leaves the job list itself intact so the
    /// coordinator can reclaim the message buffers' capacity; the
    /// parallel executor consumes the jobs (they cross threads).
    fn dispatch(&mut self, jobs: &mut Vec<RoundJob>);
    /// Appends one report per job and the round's hub-bound emissions
    /// into the coordinator's (drained) buffers.
    fn collect(&mut self, reports: &mut Vec<(usize, ClientReport)>, to_hub: &mut Vec<Msg>);
}

/// `--sim-threads 1`: the identical rounds run inline on the caller,
/// into buffers that swap with the coordinator's each round.
struct SeqExec<'a> {
    rts: &'a mut [ClientRt],
    cds: &'a mut [ClientDom],
    dqs: &'a mut [DomainQ<Ev>],
    reports: Vec<(usize, ClientReport)>,
    to_hub: Vec<Msg>,
}

impl RoundExec for SeqExec<'_> {
    fn dispatch(&mut self, jobs: &mut Vec<RoundJob>) {
        for job in jobs.iter_mut() {
            let ci = job.ci;
            let mut ctx = ClientCtx {
                ci,
                rt: &mut self.rts[ci],
                cd: &mut self.cds[ci],
                dq: &mut self.dqs[ci],
                emit: &mut self.to_hub,
            };
            let report = ctx.round(job.bound, &mut job.msgs);
            self.reports.push((ci, report));
        }
    }

    fn collect(&mut self, reports: &mut Vec<(usize, ClientReport)>, to_hub: &mut Vec<Msg>) {
        std::mem::swap(&mut self.reports, reports);
        std::mem::swap(&mut self.to_hub, to_hub);
    }
}

/// `--sim-threads > 1`: persistent scoped workers own contiguous client
/// chunks; rounds travel over channels. Only workers with at least one
/// job hear about a round at all.
struct ParExec {
    go_txs: Vec<Sender<WorkerGo>>,
    done_rx: Receiver<WorkerDone>,
    /// Which worker owns each client (chunks are contiguous).
    worker_of: Vec<usize>,
    /// Per-worker job buckets, reused between rounds.
    buckets: Vec<Vec<RoundJob>>,
    /// Workers messaged this round, hence reports owed.
    outstanding: usize,
}

impl RoundExec for ParExec {
    fn dispatch(&mut self, jobs: &mut Vec<RoundJob>) {
        for job in jobs.drain(..) {
            self.buckets[self.worker_of[job.ci]].push(job);
        }
        self.outstanding = 0;
        for (w, bucket) in self.buckets.iter_mut().enumerate() {
            if !bucket.is_empty() {
                let go = WorkerGo {
                    jobs: std::mem::take(bucket),
                };
                self.go_txs[w].send(go).expect("worker alive");
                self.outstanding += 1;
            }
        }
    }

    fn collect(&mut self, reports: &mut Vec<(usize, ClientReport)>, to_hub: &mut Vec<Msg>) {
        for _ in 0..self.outstanding {
            let d = self.done_rx.recv().expect("worker alive");
            // Reports are keyed by client and hub-bound messages merge
            // by (time, key) in the queue, so worker completion order
            // cannot perturb determinism.
            reports.extend(d.reports);
            to_hub.extend(d.to_hub);
        }
    }
}

/// A worker's whole life: run each Go order's jobs over its client
/// chunk and report; exit when the coordinator drops the channel.
fn pdes_worker(
    base: usize,
    rts: &mut [ClientRt],
    cds: &mut [ClientDom],
    dqs: &mut [DomainQ<Ev>],
    go_rx: Receiver<WorkerGo>,
    done_tx: Sender<WorkerDone>,
) {
    let mut to_hub: Vec<Msg> = Vec::new();
    while let Ok(go) = go_rx.recv() {
        let mut reports = Vec::with_capacity(go.jobs.len());
        for mut job in go.jobs {
            let ci = job.ci;
            let i = ci - base;
            let mut ctx = ClientCtx {
                ci,
                rt: &mut rts[i],
                cd: &mut cds[i],
                dq: &mut dqs[i],
                emit: &mut to_hub,
            };
            reports.push((ci, ctx.round(job.bound, &mut job.msgs)));
        }
        let done = WorkerDone {
            reports,
            to_hub: std::mem::take(&mut to_hub),
        };
        if done_tx.send(done).is_err() {
            return;
        }
    }
}

/// A lazy min-heap entry for the coordinator's client index: the sort
/// key, the client's generation at push time, and the client. An entry
/// is stale — popped and ignored — once the client's generation has
/// moved on (its effective earliest time changed).
type LazyEntry<K> = std::cmp::Reverse<(K, u32, u32)>;

/// The coordinator's per-client schedule state. Each client's
/// *effective earliest time* (`eff`) is the earlier of its reported
/// queue head and its earliest undelivered hub message; the two lazy
/// heaps index it so every round costs O(scheduled clients), never
/// O(clients): `run_heap` (keyed `eff − la_dn`, signed nanoseconds)
/// yields exactly the clients whose bound `hub_next + la_dn` admits
/// work, and `up_heap` (keyed `eff + la_up`) yields the client-side cap
/// on the hub's bound.
struct ClientSched {
    eff: Vec<Option<SimTime>>,
    generation: Vec<u32>,
    la_up: Vec<SimDuration>,
    la_dn: Vec<SimDuration>,
    run_heap: std::collections::BinaryHeap<LazyEntry<i128>>,
    up_heap: std::collections::BinaryHeap<LazyEntry<SimTime>>,
}

impl ClientSched {
    fn new(la_up: &[SimDuration], la_dn: &[SimDuration]) -> Self {
        let n = la_up.len();
        ClientSched {
            eff: vec![None; n],
            generation: vec![0; n],
            la_up: la_up.to_vec(),
            la_dn: la_dn.to_vec(),
            run_heap: std::collections::BinaryHeap::with_capacity(n),
            up_heap: std::collections::BinaryHeap::with_capacity(n),
        }
    }

    /// Records a new effective earliest time, invalidating the client's
    /// old heap entries and pushing fresh ones.
    fn set_eff(&mut self, ci: usize, eff: Option<SimTime>) {
        self.eff[ci] = eff;
        self.generation[ci] = self.generation[ci].wrapping_add(1);
        if let Some(e) = eff {
            let g = self.generation[ci];
            let run_key = e.as_nanos() as i128 - self.la_dn[ci].as_nanos() as i128;
            self.run_heap
                .push(std::cmp::Reverse((run_key, g, ci as u32)));
            self.up_heap
                .push(std::cmp::Reverse((e + self.la_up[ci], g, ci as u32)));
        }
    }

    /// An undelivered hub message for `ci` arriving at `t`: counts
    /// toward its effective earliest time — it is already committed
    /// work — even though delivery waits for the client's next round.
    fn note_msg(&mut self, ci: usize, t: SimTime) {
        match self.eff[ci] {
            Some(e) if e <= t => {}
            _ => self.set_eff(ci, Some(t)),
        }
    }

    /// The minimum of `eff + la_up` over all clients (`None` = all
    /// drained): the earliest a client emission could reach the hub.
    fn client_up(&mut self) -> Option<SimTime> {
        loop {
            let &std::cmp::Reverse((t, g, ci)) = self.up_heap.peek()?;
            if self.generation[ci as usize] == g {
                return Some(t);
            }
            self.up_heap.pop();
        }
    }

    /// Drains every client whose effective earliest time is below its
    /// round bound (`eff < hub_next + la_dn`, i.e. `eff − la_dn <
    /// hub_next`) into `jobs`, handing each its undelivered messages.
    /// Every scheduled client pops at least one event, so the total
    /// number of jobs over a run is bounded by the event count.
    fn schedule(&mut self, hub_next: SimTime, inbox: &mut [Vec<Msg>], jobs: &mut Vec<RoundJob>) {
        let horizon = hub_next.as_nanos() as i128;
        loop {
            let Some(&std::cmp::Reverse((key, g, ci))) = self.run_heap.peek() else {
                return;
            };
            let ci = ci as usize;
            if self.generation[ci] != g {
                self.run_heap.pop();
                continue;
            }
            if key >= horizon {
                return;
            }
            self.run_heap.pop();
            jobs.push(RoundJob {
                ci,
                bound: hub_next + self.la_dn[ci],
                msgs: std::mem::take(&mut inbox[ci]),
            });
        }
    }
}

/// The conservative barrier loop, identical at every thread count.
///
/// Each round: (1) compute each domain's bound from every *other*
/// domain's earliest pending work plus the boundary lookahead — the
/// hub's bound is the min over clients of their effective earliest time
/// plus the uplink delay, each scheduled client's bound is the hub's
/// earliest time plus its downlink delay; (2) run the scheduled
/// domains' rounds independently (a client whose effective earliest
/// work sits at or above its bound would pop nothing, so it is not
/// dispatched at all and its hub messages stay parked in `inbox` —
/// delivery timing is unobservable because the receiving queue orders
/// by `(time, key)`); (3) exchange the messages at the barrier. The
/// globally earliest pending event is always strictly below its
/// domain's bound (lookaheads are ≥ the 1 ns floor), so every round
/// makes progress, and because `hub_next` never decreases, messages
/// always arrive at or above the receiver's clock however long they sat
/// parked — the causality auditor checks exactly this.
fn pdes_coordinate(
    hub: &mut Hub,
    hub_dq: &mut DomainQ<Ev>,
    la_up: &[SimDuration],
    la_dn: &[SimDuration],
    exec: &mut dyn RoundExec,
) -> SimTime {
    let n = la_up.len();
    // The shortest round trip hub → any client → hub. Every event the hub
    // executes may emit toward an idle client and provoke a response, so
    // the hub's round may never run further than this past its own head —
    // an idle client constrains the hub even though it reports no events.
    let echo = la_up
        .iter()
        .zip(la_dn)
        .map(|(u, d)| *u + *d)
        .min()
        .expect("partitioned worlds have at least one client");
    let mut sched = ClientSched::new(la_up, la_dn);
    let mut inbox: Vec<Vec<Msg>> = (0..n).map(|_| Vec::new()).collect();
    let mut hub_emits: Vec<(usize, Msg)> = Vec::new();
    let mut jobs: Vec<RoundJob> = Vec::with_capacity(n);
    let mut reports: Vec<(usize, ClientReport)> = Vec::new();
    let mut to_hub: Vec<Msg> = Vec::new();
    let mut live: Vec<usize> = vec![0; n];
    let mut live_total = 0usize;
    let mut finish = SimTime::ZERO;
    let mut rounds = 0u64;
    // Round 0 only releases the workload threads: bound zero executes no
    // events, every thread runs to its first block (as `release_threads`
    // does monolithically), and the first real events get scheduled.
    for ci in 0..n {
        jobs.push(RoundJob {
            ci,
            bound: SimTime::ZERO,
            msgs: Vec::new(),
        });
    }
    exec.dispatch(&mut jobs);
    exec.collect(&mut reports, &mut to_hub);
    jobs.clear();
    for (t, k, ev) in to_hub.drain(..) {
        hub_dq.push_incoming(t, k, ev);
    }
    for (ci, r) in reports.drain(..) {
        live_total += r.live;
        live[ci] = r.live;
        finish = finish.max(r.last_finish);
        sched.set_eff(ci, r.eot);
    }
    loop {
        rounds += 1;
        if live_total == 0 {
            // Like the monolithic engine, the run ends the moment the
            // last workload thread finishes; any remaining queue entries
            // (stale retransmit timers, reassembly expiries) are dropped.
            if std::env::var_os("RENOFS_PDES_DEBUG").is_some() {
                eprintln!("[pdes-debug] rounds={rounds} clients={n}");
            }
            break;
        }
        let hub_eot = hub_dq.peek().map(|(t, _)| t);
        let client_up = sched.client_up();
        assert!(
            hub_eot.is_some() || client_up.is_some(),
            "deadlock: threads blocked with no pending events"
        );
        // Echo cap: cut the hub's bound at head + shortest round trip.
        let hub_bound = match (client_up, hub_eot.map(|h| h + echo)) {
            (Some(b), Some(cap)) => b.min(cap),
            (b, cap) => b.or(cap).expect("asserted above"),
        };
        // The hub's earliest possible action: its own queue head or the
        // earliest client emission that could reach it (= its round
        // bound), whichever is sooner. Using the min keeps a client from
        // running past its own reply when the hub's head event is far in
        // the future, and keeps every client's round bound finite while
        // the hub could still answer it — an unbounded round would grind
        // a blocked client's retransmit timer forever.
        let hub_next = match hub_eot {
            Some(h) => h.min(hub_bound),
            None => hub_bound,
        };
        sched.schedule(hub_next, &mut inbox, &mut jobs);
        exec.dispatch(&mut jobs);
        // The hub's round runs on the coordinator thread, overlapping
        // the workers' client rounds. When its head sits at or above its
        // bound it would pop nothing — don't even make the call.
        if hub_eot.is_some_and(|h| h < hub_bound) {
            hub.round(hub_dq, hub_bound, &mut hub_emits);
        }
        exec.collect(&mut reports, &mut to_hub);
        // Hand each job's (drained) message buffer back to the client's
        // inbox slot so its capacity gets reused. (The parallel executor
        // consumed the jobs; this loop is then a no-op.)
        for job in jobs.drain(..) {
            if job.msgs.capacity() > 0 {
                inbox[job.ci] = job.msgs;
            }
        }
        for (ci, r) in reports.drain(..) {
            live_total -= live[ci] - r.live;
            live[ci] = r.live;
            finish = finish.max(r.last_finish);
            // The job delivered everything parked for this client, so
            // its queue head is the whole story again.
            sched.set_eff(ci, r.eot);
        }
        // Absorb client emissions only after the hub's round: they are
        // stamped at or above the hub's bound, so its clock has not
        // passed them (the causality auditor checks exactly this).
        for (t, k, ev) in to_hub.drain(..) {
            hub_dq.push_incoming(t, k, ev);
        }
        for (ci, m) in hub_emits.drain(..) {
            sched.note_msg(ci, m.0);
            inbox[ci].push(m);
        }
    }
    finish
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{ClientConfig, ClientFs};
    use crate::proto::NfsStatus;
    use renofs_vfs::InodeId;
    use std::sync::mpsc::channel as result_channel;

    fn preload(world: &mut World, name: &str, bytes: &[u8]) {
        let root = world.server().fs().root();
        let ino = world
            .server_mut()
            .fs_mut()
            .create(root, name, 0o644, SimTime::ZERO)
            .unwrap();
        world
            .server_mut()
            .fs_mut()
            .write(ino, 0, bytes, SimTime::ZERO)
            .unwrap();
        let _ = InodeId(0);
    }

    fn full_stack_round_trip(transport: TransportKind) {
        let mut cfg = WorldConfig::baseline();
        cfg.transport = transport;
        let mut world = World::new(cfg);
        let payload: Vec<u8> = (0..20_000u32).map(|i| (i * 13 % 256) as u8).collect();
        preload(&mut world, "preloaded.bin", &payload);
        let root = world.root_handle();
        let (tx, rx) = result_channel();
        let expect = payload.clone();
        world.spawn(move |sys| {
            let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
            // Read the preloaded file through the full stack.
            let fh = fs.lookup_path("/preloaded.bin").unwrap();
            let got = fs.read(fh, 0, 30_000).unwrap();
            assert_eq!(got, expect);
            // Write a new file and read it back.
            let out = fs.open("/out.bin", true, false).unwrap();
            fs.write(out, 0, b"written through the simulated network")
                .unwrap();
            fs.close(out).unwrap();
            let back = fs.read(out, 0, 100).unwrap();
            tx.send(back).unwrap();
        });
        world.run();
        let back = rx.recv().unwrap();
        assert_eq!(back, b"written through the simulated network");
        assert!(world.now() > SimTime::ZERO);
        // The server actually served RPCs.
        assert!(world.server().stats().total() > 5);
    }

    #[test]
    fn udp_dynamic_full_stack() {
        full_stack_round_trip(TransportKind::UdpDynamic {
            timeo: SimDuration::from_secs(1),
        });
    }

    #[test]
    fn udp_fixed_full_stack() {
        full_stack_round_trip(TransportKind::UdpFixed {
            timeo: SimDuration::from_secs(1),
        });
    }

    #[test]
    fn tcp_full_stack() {
        full_stack_round_trip(TransportKind::Tcp);
    }

    #[test]
    fn stat_over_the_wire() {
        let mut world = World::new(WorldConfig::baseline());
        preload(&mut world, "f.txt", b"12345");
        let root = world.root_handle();
        let (tx, rx) = result_channel();
        world.spawn(move |sys| {
            let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
            let attr = fs.stat("/f.txt").unwrap();
            tx.send(attr.size).unwrap();
            assert!(matches!(
                fs.stat("/missing"),
                Err(crate::client::ClientError::Nfs(NfsStatus::NoEnt))
            ));
        });
        world.run();
        assert_eq!(rx.recv().unwrap(), 5);
    }

    #[test]
    fn deterministic_runs() {
        let run_once = || {
            let mut world = World::new(WorldConfig::baseline());
            preload(&mut world, "d.bin", &[7u8; 12_000]);
            let root = world.root_handle();
            world.spawn(move |sys| {
                let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
                let fh = fs.lookup_path("/d.bin").unwrap();
                let _ = fs.read(fh, 0, 12_000).unwrap();
                let out = fs.open("/o.bin", true, false).unwrap();
                fs.write(out, 0, &[1u8; 9_000]).unwrap();
                fs.close(out).unwrap();
            });
            world.run();
            world.now()
        };
        assert_eq!(run_once(), run_once(), "identical seeds, identical clocks");
    }

    #[test]
    fn sleep_paces_threads() {
        let mut world = World::new(WorldConfig::baseline());
        let (tx, rx) = result_channel();
        world.spawn(move |sys| {
            let t0 = sys.now();
            sys.sleep(SimDuration::from_millis(250));
            let t1 = sys.now();
            tx.send(t1.since(t0)).unwrap();
        });
        world.run();
        assert_eq!(rx.recv().unwrap(), SimDuration::from_millis(250));
    }

    fn multi_client_round_trip(transport: TransportKind) {
        let mut cfg = WorldConfig::baseline();
        cfg.transport = transport;
        cfg.clients = 3;
        let mut world = World::new(cfg);
        assert_eq!(world.client_count(), 3);
        preload(&mut world, "shared.bin", &[5u8; 9_000]);
        let root = world.root_handle();
        let (tx, rx) = result_channel();
        for ci in 0..3 {
            let tx = tx.clone();
            world.spawn_on(ci, move |sys| {
                let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
                let fh = fs.lookup_path("/shared.bin").unwrap();
                let got = fs.read(fh, 0, 9_000).unwrap();
                assert_eq!(got.len(), 9_000);
                // Each client writes its own file too.
                let out = fs.open("/own.bin", true, false).unwrap();
                fs.write(out, 0, &[ci as u8; 2_000]).unwrap();
                fs.close(out).unwrap();
                tx.send(ci).unwrap();
            });
        }
        drop(tx);
        world.run();
        let mut done: Vec<usize> = rx.iter().collect();
        done.sort_unstable();
        assert_eq!(done, vec![0, 1, 2], "every client completed");
        assert!(world.server().stats().total() > 15);
    }

    #[test]
    fn three_clients_udp_share_one_server() {
        multi_client_round_trip(TransportKind::UdpDynamic {
            timeo: SimDuration::from_secs(1),
        });
    }

    #[test]
    fn three_clients_tcp_share_one_server() {
        multi_client_round_trip(TransportKind::Tcp);
    }

    #[test]
    fn multi_client_runs_are_deterministic() {
        let run_once = || {
            let mut cfg = WorldConfig::baseline();
            cfg.clients = 4;
            let mut world = World::new(cfg);
            preload(&mut world, "d.bin", &[7u8; 8_000]);
            let root = world.root_handle();
            for ci in 0..4 {
                world.spawn_on(ci, move |sys| {
                    let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
                    let fh = fs.lookup_path("/d.bin").unwrap();
                    let _ = fs.read(fh, 0, 8_000).unwrap();
                });
            }
            world.run();
            world.now()
        };
        assert_eq!(run_once(), run_once(), "identical seeds, identical clocks");
    }

    #[test]
    fn nfsd_pool_queues_when_daemons_are_busy() {
        let mut cfg = WorldConfig::baseline();
        cfg.clients = 4;
        cfg.nfsds = 1;
        let mut world = World::new(cfg);
        preload(&mut world, "hot.bin", &[3u8; 8_000]);
        let root = world.root_handle();
        for ci in 0..4 {
            world.spawn_on(ci, move |sys| {
                let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
                let fh = fs.lookup_path("/hot.bin").unwrap();
                let _ = fs.read(fh, 0, 8_000).unwrap();
            });
        }
        world.run();
        let stats = world.nfsd_stats();
        assert!(stats.served > 0, "pool served requests");
        assert!(
            stats.queued > 0,
            "one daemon, four clients: someone waited ({stats:?})"
        );
        assert!(
            stats.queue_delays_ms.iter().any(|&d| d > 0.0),
            "queueing delay recorded"
        );
        assert!(stats.service_ms.count() > 0);
        assert_eq!(stats.served as usize, stats.queue_delays_ms.len());
    }

    #[test]
    fn nfsd_pool_with_headroom_matches_unbounded_world() {
        // A pool wider than the peak concurrency must not change any
        // timing: the daemons never saturate, so the request stream is
        // identical to the unbounded pre-pool model.
        let run = |nfsds: usize| {
            let mut cfg = WorldConfig::baseline();
            cfg.nfsds = nfsds;
            let mut world = World::new(cfg);
            preload(&mut world, "d.bin", &[7u8; 12_000]);
            let root = world.root_handle();
            world.spawn(move |sys| {
                let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
                let fh = fs.lookup_path("/d.bin").unwrap();
                let _ = fs.read(fh, 0, 12_000).unwrap();
                let out = fs.open("/o.bin", true, false).unwrap();
                fs.write(out, 0, &[1u8; 9_000]).unwrap();
                fs.close(out).unwrap();
            });
            world.run();
            world.now()
        };
        assert_eq!(run(0), run(64), "headroom pool is timing-transparent");
    }

    #[test]
    fn soft_mount_times_out_during_partition() {
        let mut cfg = WorldConfig::baseline();
        cfg.faults = FaultPlan::new().partition(SimTime::from_secs(2), SimDuration::from_secs(30));
        cfg.mount = MountOptions::soft(2);
        let mut world = World::new(cfg);
        preload(&mut world, "f.txt", b"hello");
        preload(&mut world, "g.txt", b"worldly");
        preload(&mut world, "h.txt", b"byebye");
        let root = world.root_handle();
        let (tx, rx) = result_channel();
        world.spawn(move |sys| {
            let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
            // Before the partition: works.
            let before = fs.stat("/f.txt").map(|a| a.size);
            // Step into the partition and stat a file the client has
            // never seen (no cache to hide behind): the soft mount must
            // give up within its retrans budget instead of hanging.
            fs.sys().sleep(SimDuration::from_secs(3));
            let t0 = fs.sys().now();
            let during = fs.stat("/g.txt").map(|a| a.size);
            let waited = fs.sys().now().since(t0);
            // After the heal: works again.
            fs.sys().sleep(SimDuration::from_secs(40));
            let after = fs.stat("/h.txt").map(|a| a.size);
            tx.send((before, during, waited, after)).unwrap();
        });
        world.run();
        let (before, during, waited, after) = rx.recv().unwrap();
        assert_eq!(before, Ok(5));
        assert_eq!(during, Err(crate::client::ClientError::TimedOut));
        assert!(
            waited < SimDuration::from_secs(30),
            "soft mount gave up within the retry budget, not at the heal"
        );
        assert_eq!(after, Ok(6));
        assert!(world
            .client_events()
            .iter()
            .any(|e| e.kind == ClientEventKind::SoftTimeout));
    }

    #[test]
    fn hard_mount_blocks_through_partition_and_logs_console_pair() {
        let mut cfg = WorldConfig::baseline();
        cfg.faults = FaultPlan::new().partition(SimTime::from_secs(2), SimDuration::from_secs(10));
        // Hard mount with a low console threshold, like `-o retrans=2`.
        cfg.mount = MountOptions {
            soft: false,
            retrans: 2,
        };
        let mut world = World::new(cfg);
        preload(&mut world, "g.txt", b"worldly");
        let root = world.root_handle();
        let (tx, rx) = result_channel();
        world.spawn(move |sys| {
            let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
            fs.sys().sleep(SimDuration::from_secs(3));
            // Issued mid-partition against an uncached file: a hard mount
            // never errors; the call blocks until the network heals and
            // the retry gets through.
            let size = fs.stat("/g.txt").unwrap().size;
            let done = fs.sys().now();
            tx.send((size, done)).unwrap();
        });
        world.run();
        let (size, done) = rx.recv().unwrap();
        assert_eq!(size, 7);
        assert!(
            done >= SimTime::from_secs(12),
            "completed only after the heal at t=12s, got {done:?}"
        );
        let events = world.client_events();
        let nr = events
            .iter()
            .position(|e| e.kind == ClientEventKind::NotResponding)
            .expect("hard mount logged `server not responding`");
        let ok = events
            .iter()
            .position(|e| e.kind == ClientEventKind::ServerOk)
            .expect("hard mount logged `server ok`");
        assert!(nr < ok, "not-responding precedes server-ok");
    }

    #[test]
    fn server_crash_reboot_recovers_hard_mount() {
        let mut cfg = WorldConfig::baseline();
        cfg.faults =
            FaultPlan::new().server_crash(SimTime::from_secs(2), SimDuration::from_secs(5));
        let mut world = World::new(cfg);
        preload(&mut world, "g.txt", b"worldly");
        let root = world.root_handle();
        let (tx, rx) = result_channel();
        world.spawn(move |sys| {
            let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "uvax1");
            fs.sys().sleep(SimDuration::from_millis(2500));
            // The server is down and its caches will be cold after
            // reboot; the hard mount just retries until it answers.
            let size = fs.stat("/g.txt").unwrap().size;
            tx.send((size, fs.sys().now())).unwrap();
        });
        world.run();
        let (size, done) = rx.recv().unwrap();
        assert_eq!(size, 7);
        assert!(done >= SimTime::from_secs(7), "answered only after reboot");
        assert!(world.server_is_up());
        let kinds: Vec<_> = world.client_events().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&ClientEventKind::ServerCrashed));
        assert!(kinds.contains(&ClientEventKind::ServerRebooted));
    }
}
