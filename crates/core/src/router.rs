//! Client-side mount router for sharded multi-server fleets.
//!
//! The paper's testbed is one export on one server; ROADMAP item 2 asks
//! for the fleet generalization. [`RouterFs`] plays the automounter's
//! role: it holds one [`ClientFs`] mount per export, routes each
//! path-based operation to the owning shard by longest-prefix match on
//! component boundaries, and stitches the shards back into one
//! namespace, the way `/net`-style automount maps did on period BSD
//! systems.
//!
//! Layering:
//!
//! - [`ExportMap`] — the fleet's export table, `prefix -> primary
//!   server (+ optional read-only replicas)`.
//! - [`ServerPort`] — a [`Syscalls`] adapter that pins every RPC of one
//!   mount to one server of the fleet via
//!   [`Syscalls::rpc_to`]/[`Syscalls::rpc_async_to`]. Each mount gets
//!   its own XID stream (a disjoint XID base per mount) so two mounts
//!   of one machine can never present colliding XIDs to one server's
//!   duplicate-request cache.
//! - [`RouterFs`] — the namespace facade. Handles are
//!   [`RouterHandle`]s (mount index + NFS handle) because two shards,
//!   built by the same deterministic recipe, can legitimately hand out
//!   bit-identical `FileHandle`s.
//!
//! Failure handling mirrors the soft-mount and crash-recovery semantics
//! of the single-server client: a read-only operation that dies with
//! [`ClientError::TimedOut`] or [`ClientError::Stale`] on its primary
//! is retried on each read-only replica in table order; a stale handle
//! whose mount-local recovery failed is re-walked through the export
//! map from the path, which lets recovery cross shards after the
//! namespace is re-exported.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use renofs_mbuf::MbufChain;
use renofs_sim::{SimDuration, SimTime};
use renofs_vfs::{FileType, Vattr};

use crate::client::{CResult, ClientConfig, ClientError, ClientFs, RpcCounts};
use crate::proto::{DirEntry, FileHandle, NfsProc};
use crate::syscalls::{RpcResult, Syscalls, Ticket};

/// One export of the fleet: the subtree `prefix` is owned by server
/// `primary`; `replicas` name servers carrying a read-only copy.
#[derive(Clone, Debug)]
pub struct Export {
    /// Mount point ("/" or "/name"), matched on component boundaries.
    pub prefix: String,
    /// Server index owning the subtree (all writes go here).
    pub primary: usize,
    /// Read-only replica servers, tried in order on primary failure.
    pub replicas: Vec<usize>,
}

/// The export table of an M-server fleet.
#[derive(Clone, Debug)]
pub struct ExportMap {
    exports: Vec<Export>,
}

impl ExportMap {
    /// Builds a table from explicit exports. Exactly one export must
    /// cover "/" so every path routes somewhere.
    pub fn new(exports: Vec<Export>) -> Self {
        assert!(
            exports.iter().any(|e| e.prefix == "/"),
            "an export must cover the root"
        );
        ExportMap { exports }
    }

    /// The conventional M-shard fleet layout: server 0 exports "/",
    /// server j (j >= 1) exports "/s{j}". With m == 1 this is exactly
    /// the legacy single-server namespace.
    pub fn fleet(m: usize) -> Self {
        let mut exports = vec![Export {
            prefix: "/".to_string(),
            primary: 0,
            replicas: Vec::new(),
        }];
        for j in 1..m.max(1) {
            exports.push(Export {
                prefix: format!("/s{j}"),
                primary: j,
                replicas: Vec::new(),
            });
        }
        ExportMap { exports }
    }

    /// The exports, in table order (mount index == table index).
    pub fn exports(&self) -> &[Export] {
        &self.exports
    }

    /// Longest-prefix route on component boundaries: returns the export
    /// index and the path relative to that export's root.
    pub fn route<'p>(&self, path: &'p str) -> (usize, &'p str) {
        let mut best: Option<(usize, usize)> = None; // (len, idx)
        for (idx, e) in self.exports.iter().enumerate() {
            let p = e.prefix.as_str();
            let hit = if p == "/" {
                path.starts_with('/')
            } else {
                path == p || (path.starts_with(p) && path.as_bytes().get(p.len()) == Some(&b'/'))
            };
            if hit && best.is_none_or(|(l, _)| p.len() > l) {
                best = Some((p.len(), idx));
            }
        }
        let (plen, idx) = best.expect("the root export matches every absolute path");
        let rel = if self.exports[idx].prefix == "/" {
            path
        } else {
            let r = &path[plen..];
            if r.is_empty() {
                "/"
            } else {
                r
            }
        };
        (idx, rel)
    }
}

/// [`Syscalls`] adapter pinning one mount's RPC stream to one server.
/// The underlying machine (`S`) is shared by every mount of the router
/// through an `Rc<RefCell<_>>`; the workload is single-threaded
/// blocking code, so borrows never overlap.
pub struct ServerPort<S: Syscalls> {
    sys: Rc<RefCell<S>>,
    server: usize,
}

impl<S: Syscalls> ServerPort<S> {
    /// Wraps a shared machine, pinning RPCs to `server`. Useful on its
    /// own for tests that mount plain [`ClientFs`] instances against
    /// individual shards of a fleet.
    pub fn new(sys: Rc<RefCell<S>>, server: usize) -> Self {
        ServerPort { sys, server }
    }
}

impl<S: Syscalls> Syscalls for ServerPort<S> {
    fn now(&mut self) -> SimTime {
        self.sys.borrow_mut().now()
    }
    fn charge_cpu(&mut self, d: SimDuration) {
        self.sys.borrow_mut().charge_cpu(d)
    }
    fn sleep(&mut self, d: SimDuration) {
        self.sys.borrow_mut().sleep(d)
    }
    fn rpc(&mut self, proc: NfsProc, msg: MbufChain) -> RpcResult {
        self.sys.borrow_mut().rpc_to(self.server, proc, msg)
    }
    fn rpc_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> RpcResult {
        self.sys.borrow_mut().rpc_to(server, proc, msg)
    }
    fn rpc_async(&mut self, proc: NfsProc, msg: MbufChain) -> Ticket {
        self.sys.borrow_mut().rpc_async_to(self.server, proc, msg)
    }
    fn rpc_async_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> Ticket {
        self.sys.borrow_mut().rpc_async_to(server, proc, msg)
    }
    fn await_ticket(&mut self, t: Ticket) -> RpcResult {
        self.sys.borrow_mut().await_ticket(t)
    }
    fn poll_ticket(&mut self, t: Ticket) -> Option<RpcResult> {
        self.sys.borrow_mut().poll_ticket(t)
    }
    fn forget_ticket(&mut self, t: Ticket) {
        self.sys.borrow_mut().forget_ticket(t)
    }
    fn wait_all_async(&mut self) {
        self.sys.borrow_mut().wait_all_async()
    }
    fn local_disk(&mut self, bytes: usize, write: bool, sequential: bool) {
        self.sys.borrow_mut().local_disk(bytes, write, sequential)
    }
}

/// A handle in the stitched namespace: which mount produced it plus the
/// shard-local NFS handle. Two shards can hand out identical
/// [`FileHandle`]s, so the mount index is part of the identity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RouterHandle {
    /// Index into the export table (== mount index).
    pub export: usize,
    /// The shard-local NFS handle.
    pub fh: FileHandle,
}

/// Disjoint XID space per mount: the router's mount k issues XIDs
/// `k << 24 | 1 ..`, so no two mounts of one machine — even two mounts
/// reaching the *same* server (a replica next to a primary) — can
/// collide in a server's `(client, xid, proc)` duplicate cache.
fn xid_base(mount: usize) -> u32 {
    ((mount as u32) << 24) | 1
}

struct MountPoint<S: Syscalls> {
    fs: ClientFs<ServerPort<S>>,
    /// Read-only replica mounts, same order as the export's `replicas`.
    replicas: Vec<ClientFs<ServerPort<S>>>,
}

/// The automount-style namespace facade over an M-server fleet.
pub struct RouterFs<S: Syscalls> {
    map: ExportMap,
    mounts: Vec<MountPoint<S>>,
    /// Path each handle was produced under, for cross-shard `ESTALE`
    /// re-walks (mount-local recovery already lives in [`ClientFs`]).
    paths: HashMap<RouterHandle, String>,
    /// Fault-injection hook for the soak `WrongShardRoute` mutant: when
    /// set, every non-root export's subtree is misrouted to export 0
    /// (the classic "automount map edited, daemon not HUPed" failure).
    misroute: bool,
}

impl<S: Syscalls> RouterFs<S> {
    /// Mounts the fleet: one [`ClientFs`] per export (plus one per
    /// replica), all multiplexed over the machine `sys`. `roots[j]`
    /// must be server j's export root handle.
    pub fn mount(
        sys: S,
        cfg: ClientConfig,
        map: ExportMap,
        roots: &[FileHandle],
        machine: &'static str,
    ) -> Self {
        let sys = Rc::new(RefCell::new(sys));
        let mut mounts = Vec::with_capacity(map.exports.len());
        let mut next_mount = 0usize;
        for e in &map.exports {
            let mut mk = |server: usize| {
                let port = ServerPort {
                    sys: Rc::clone(&sys),
                    server,
                };
                let mut fs = ClientFs::mount(port, cfg, roots[server], machine);
                fs.set_xid_base(xid_base(next_mount));
                next_mount += 1;
                fs
            };
            let fs = mk(e.primary);
            let replicas = e.replicas.iter().map(|&r| mk(r)).collect();
            mounts.push(MountPoint { fs, replicas });
        }
        RouterFs {
            map,
            mounts,
            paths: HashMap::new(),
            misroute: false,
        }
    }

    /// The export table in force.
    pub fn export_map(&self) -> &ExportMap {
        &self.map
    }

    /// Replaces the routing table without disturbing the mounts (the
    /// re-export case: a subtree moves to another shard that already
    /// carries the data). Only the prefix -> export mapping changes;
    /// the mount list must be the same length.
    pub fn set_export_map(&mut self, map: ExportMap) {
        assert_eq!(
            map.exports.len(),
            self.mounts.len(),
            "re-export cannot add or remove mounts"
        );
        self.map = map;
    }

    /// Soak-mutant hook: alias every non-root export's subtree onto
    /// export 0, keeping the shard-relative path (a wrong-shard
    /// automount map). A client running with this map resolves shard
    /// paths against the wrong server's namespace, so durable files its
    /// peers wrote simply are not there.
    pub fn set_misroute(&mut self, on: bool) {
        self.misroute = on;
    }

    /// Aggregated per-procedure RPC counters across every mount.
    pub fn counts(&self) -> RpcCounts {
        let mut total = RpcCounts::default();
        for m in &self.mounts {
            total.absorb(&m.fs.counts());
            for r in &m.replicas {
                total.absorb(&r.counts());
            }
        }
        total
    }

    /// Counters of one mount (primary only), for per-shard fairness.
    pub fn counts_of(&self, export: usize) -> RpcCounts {
        self.mounts[export].fs.counts()
    }

    /// Routes a path, honouring the misroute fault.
    fn route<'p>(&self, path: &'p str) -> (usize, &'p str) {
        let (idx, rel) = self.map.route(path);
        if self.misroute && idx != 0 {
            // Wrong automount map: the subtree's ops land on export 0
            // with the shard-relative path, colliding with whatever
            // export 0 legitimately stores there.
            return (0, rel);
        }
        (idx, rel)
    }

    fn remember(&mut self, h: RouterHandle, path: &str) {
        self.paths.insert(h, path.to_string());
    }

    /// An error worth retrying on a read-only replica.
    fn failable(e: ClientError) -> bool {
        matches!(e, ClientError::TimedOut | ClientError::Stale)
    }

    // ----- path operations ----------------------------------------------

    /// Resolves a path to a handle in the stitched namespace.
    pub fn lookup_path(&mut self, path: &str) -> CResult<RouterHandle> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        let fh = match self.mounts[idx].fs.lookup_path(&rel) {
            Err(e) if Self::failable(e) => {
                let mut last = Err(e);
                for r in &mut self.mounts[idx].replicas {
                    last = r.lookup_path(&rel);
                    if last.is_ok() {
                        break;
                    }
                }
                last?
            }
            r => r?,
        };
        let h = RouterHandle { export: idx, fh };
        self.remember(h, path);
        Ok(h)
    }

    /// `stat(2)` through the router, with replica failover.
    pub fn stat(&mut self, path: &str) -> CResult<Vattr> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        match self.mounts[idx].fs.stat(&rel) {
            Err(e) if Self::failable(e) => {
                let mut last = Err(e);
                for r in &mut self.mounts[idx].replicas {
                    last = r.stat(&rel);
                    if last.is_ok() {
                        break;
                    }
                }
                last
            }
            r => r,
        }
    }

    /// Opens (optionally creating/truncating) a file on its owning shard.
    pub fn open(&mut self, path: &str, create: bool, truncate: bool) -> CResult<RouterHandle> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        let fh = self.mounts[idx].fs.open(&rel, create, truncate)?;
        let h = RouterHandle { export: idx, fh };
        self.remember(h, path);
        Ok(h)
    }

    /// Closes a handle (pushing dirty blocks on its owning shard).
    pub fn close(&mut self, h: RouterHandle) -> CResult<()> {
        self.mounts[h.export].fs.close(h.fh)
    }

    /// Reads through the owning mount. On a failed primary
    /// (timeout/stale after mount-local recovery), replicas serve the
    /// read by path re-walk; a stale survivor is re-routed through the
    /// export map, which may cross shards after a re-export.
    pub fn read(&mut self, h: RouterHandle, off: u32, len: u32) -> CResult<Vec<u8>> {
        match self.mounts[h.export].fs.read(h.fh, off, len) {
            Err(e) if Self::failable(e) => {
                let Some(path) = self.paths.get(&h).cloned() else {
                    return Err(e);
                };
                let (_, rel) = self.map.route(&path);
                let rel = rel.to_string();
                for r in &mut self.mounts[h.export].replicas {
                    if let Ok(fh) = r.lookup_path(&rel) {
                        if let Ok(data) = r.read(fh, off, len) {
                            return Ok(data);
                        }
                    }
                }
                // Cross-shard re-walk: the export map may route the
                // path to a different (healthy) shard by now.
                let h2 = self.lookup_path(&path)?;
                if h2 == h {
                    return Err(e);
                }
                self.mounts[h2.export].fs.read(h2.fh, off, len)
            }
            r => r,
        }
    }

    /// Writes through the owning mount (writes never fail over).
    pub fn write(&mut self, h: RouterHandle, off: u32, data: &[u8]) -> CResult<()> {
        self.mounts[h.export].fs.write(h.fh, off, data)
    }

    /// Pushes a handle's dirty blocks on its owning shard.
    pub fn push_dirty(&mut self, h: RouterHandle, sync: bool) -> CResult<()> {
        self.mounts[h.export].fs.push_dirty(h.fh, sync)
    }

    /// `sync(2)`: pushes every mount's dirty state.
    pub fn sync(&mut self) -> CResult<()> {
        for m in &mut self.mounts {
            m.fs.sync()?;
        }
        Ok(())
    }

    /// Creates a directory on the owning shard.
    pub fn mkdir(&mut self, path: &str) -> CResult<RouterHandle> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        let fh = self.mounts[idx].fs.mkdir(&rel)?;
        let h = RouterHandle { export: idx, fh };
        self.remember(h, path);
        Ok(h)
    }

    /// Removes a file on the owning shard.
    pub fn remove(&mut self, path: &str) -> CResult<()> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        self.mounts[idx].fs.remove(&rel)
    }

    /// Removes a directory on the owning shard.
    pub fn rmdir(&mut self, path: &str) -> CResult<()> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        self.mounts[idx].fs.rmdir(&rel)
    }

    /// Renames within a shard natively; across shards, the router does
    /// what the kernel does for cross-device renames at the VFS layer —
    /// refuses the atomic op — and what `mv(1)` then does in userland:
    /// copy the bytes and remove the source. Directories do not move
    /// across shards.
    pub fn rename(&mut self, from: &str, to: &str) -> CResult<()> {
        let (fi, frel) = self.route(from);
        let (ti, trel) = self.route(to);
        let (frel, trel) = (frel.to_string(), trel.to_string());
        if fi == ti {
            return self.mounts[fi].fs.rename(&frel, &trel);
        }
        let attr = self.mounts[fi].fs.stat(&frel)?;
        if attr.ftype != FileType::Regular {
            // EXDEV territory: only plain files are copied across.
            return Err(ClientError::Nfs(crate::proto::NfsStatus::IsDir));
        }
        let src = self.mounts[fi].fs.lookup_path(&frel)?;
        let dst = self.mounts[ti].fs.open(&trel, true, true)?;
        let mut off = 0u32;
        while off < attr.size {
            let want = (attr.size - off).min(renofs_vfs::BLOCK_SIZE as u32);
            let data = self.mounts[fi].fs.read(src, off, want)?;
            if data.is_empty() {
                break;
            }
            self.mounts[ti].fs.write(dst, off, &data)?;
            off += data.len() as u32;
        }
        self.mounts[ti].fs.close(dst)?;
        self.mounts[fi].fs.remove(&frel)
    }

    /// Creates a symlink on the owning shard.
    pub fn symlink(&mut self, path: &str, target: &str) -> CResult<()> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        self.mounts[idx].fs.symlink(&rel, target)
    }

    /// Reads a symlink on the owning shard, with replica failover.
    pub fn readlink(&mut self, path: &str) -> CResult<String> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        match self.mounts[idx].fs.readlink(&rel) {
            Err(e) if Self::failable(e) => {
                let mut last = Err(e);
                for r in &mut self.mounts[idx].replicas {
                    last = r.readlink(&rel);
                    if last.is_ok() {
                        break;
                    }
                }
                last
            }
            r => r,
        }
    }

    /// Lists a directory on the owning shard, with replica failover.
    pub fn readdir(&mut self, path: &str) -> CResult<Vec<DirEntry>> {
        let (idx, rel) = self.route(path);
        let rel = rel.to_string();
        match self.mounts[idx].fs.readdir(&rel) {
            Err(e) if Self::failable(e) => {
                let mut last = Err(e);
                for r in &mut self.mounts[idx].replicas {
                    last = r.readdir(&rel);
                    if last.is_ok() {
                        break;
                    }
                }
                last
            }
            r => r,
        }
    }

    /// The machine's clock, via mount 0 (every mount shares one
    /// machine, so any port answers identically).
    pub fn now(&mut self) -> SimTime {
        self.mounts[0].fs.sys().now()
    }

    /// Sleeps the machine's workload thread.
    pub fn sleep(&mut self, d: SimDuration) {
        self.mounts[0].fs.sys().sleep(d)
    }

    /// Pushes write-behind data whose leases are idle, on every mount
    /// (a no-op outside lease worlds).
    pub fn flush_idle(&mut self) -> CResult<()> {
        for m in &mut self.mounts {
            m.fs.flush_idle()?;
        }
        Ok(())
    }

    /// Direct access to one export's primary [`ClientFs`] (tests,
    /// instrumentation).
    pub fn mount_of(&mut self, export: usize) -> &mut ClientFs<ServerPort<S>> {
        &mut self.mounts[export].fs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_map_routes_longest_prefix_on_component_boundaries() {
        let map = ExportMap::fleet(4);
        assert_eq!(map.route("/a/b"), (0, "/a/b"));
        assert_eq!(map.route("/s1/a"), (1, "/a"));
        assert_eq!(map.route("/s1"), (1, "/"));
        assert_eq!(map.route("/s3/x/y"), (3, "/x/y"));
        // "/s10" is NOT under "/s1": component boundary matters.
        assert_eq!(map.route("/s10/a"), (0, "/s10/a"));
    }

    #[test]
    fn fleet_map_of_one_server_is_the_legacy_namespace() {
        let map = ExportMap::fleet(1);
        assert_eq!(map.exports().len(), 1);
        assert_eq!(map.route("/anything/at/all"), (0, "/anything/at/all"));
    }

    #[test]
    fn custom_map_picks_longest_prefix() {
        let map = ExportMap::new(vec![
            Export {
                prefix: "/".into(),
                primary: 0,
                replicas: vec![],
            },
            Export {
                prefix: "/proj".into(),
                primary: 1,
                replicas: vec![],
            },
            Export {
                prefix: "/proj/deep".into(),
                primary: 2,
                replicas: vec![],
            },
        ]);
        assert_eq!(map.route("/proj/deep/f"), (2, "/f"));
        assert_eq!(map.route("/proj/shallow"), (1, "/shallow"));
        assert_eq!(map.route("/other"), (0, "/other"));
    }

    #[test]
    #[should_panic(expected = "root")]
    fn map_without_root_export_is_rejected() {
        ExportMap::new(vec![Export {
            prefix: "/only".into(),
            primary: 0,
            replicas: vec![],
        }]);
    }

    #[test]
    fn xid_bases_are_disjoint_per_mount() {
        // 2^24 xids of headroom per mount: no two mounts can collide
        // within a run (the busiest experiments issue ~10^6 RPCs).
        assert_eq!(xid_base(0), 1);
        assert_eq!(xid_base(1), 1 << 24 | 1);
        assert_ne!(xid_base(2) >> 24, xid_base(1) >> 24);
    }
}
