//! The stateless NFS server.
//!
//! All request state arrives in the RPC itself; crash recovery is
//! trivial because there is nothing to recover. The cost of statelessness
//! shows up exactly where the paper says it does: writes must reach disk
//! before the reply (1–3 disk writes per write RPC), repeated
//! non-idempotent requests can misbehave under load — mitigated here by
//! an optional `[Juszczak89]`-style duplicate-request cache — and the
//! server cannot know about other clients' delayed writes.
//!
//! The server is configured as either the 4.3BSD Reno machine (name
//! cache, buffers chained off vnodes) or the Ultrix 2.2 model (no name
//! cache, global buffer search) for the Graph 8–9 comparison. Service
//! returns the reply *plus* a [`ServiceCost`] that the host model turns
//! into CPU and disk time.

use std::collections::VecDeque;

use renofs_mbuf::{CopyMeter, MbufChain};
use renofs_sim::SimTime;
use renofs_sunrpc::{AcceptStat, CallHeader, ReplyHeader, NFS_PROGRAM, NFS_VERSION, NQNFS_VERSION};
use renofs_vfs::{
    Buf, BufCache, CacheOrg, FsError, InodeId, MemFs, NameCache, VnodeId, BLOCK_SIZE,
};
use renofs_xdr::{XdrDecoder, XdrEncoder};

use crate::proto::{
    self, decode_args, results, DirEntry, DirEntryPlus, FileHandle, NfsArgs, NfsProc, NfsStatus,
    LEASE_MODE_RELEASE, LEASE_MODE_WRITE, LEASE_TERM,
};

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Enable the VFS name-lookup cache.
    pub name_cache: bool,
    /// Buffer-cache search organization.
    pub cache_org: CacheOrg,
    /// Buffer cache capacity in 8 KB blocks (the paper configured the
    /// compared kernels with identically sized caches).
    pub bufcache_blocks: usize,
    /// Enable the duplicate-request cache (extension; `[Juszczak89]`).
    pub dup_cache: bool,
    /// Future-work extension from Section 3: loan buffer-cache pages to
    /// the network as mbuf clusters instead of copying read data.
    pub loan_read_pages: bool,
    /// Ambient resident buffers a long-running server's cache holds
    /// (they cost search steps under the global-search organization).
    pub ambient_blocks: usize,
    /// Serve the READDIRLOOKUP extension (the paper's Future Directions
    /// "readdir_and_lookup_files" RPC).
    pub readdir_lookup: bool,
    /// Serve NQNFS-style leases: accept `NQNFS_VERSION` calls, run the
    /// per-file lease table, and piggyback recall callbacks on reply
    /// trailers. Off by default — classic traffic stays byte-identical.
    pub leases: bool,
    /// Mutation-test hook: skip the post-reboot lease grace period (the
    /// rule that a rebooted server waits out the maximum lease term
    /// before serving reads or granting new leases). Never set outside
    /// planted-bug tests.
    pub lease_no_reboot_grace: bool,
}

impl ServerConfig {
    /// The 4.3BSD Reno server.
    pub fn reno() -> Self {
        ServerConfig {
            name_cache: true,
            cache_org: CacheOrg::PerVnodeChains,
            bufcache_blocks: 256,
            dup_cache: false,
            loan_read_pages: false,
            ambient_blocks: 192,
            readdir_lookup: false,
            leases: false,
            lease_no_reboot_grace: false,
        }
    }

    /// The Ultrix 2.2 (Sun reference port) model.
    pub fn ultrix() -> Self {
        ServerConfig {
            name_cache: false,
            cache_org: CacheOrg::GlobalList,
            bufcache_blocks: 256,
            dup_cache: false,
            loan_read_pages: false,
            ambient_blocks: 192,
            readdir_lookup: false,
            leases: false,
            lease_no_reboot_grace: false,
        }
    }
}

/// Physical work a request incurred, priced by the host model.
#[derive(Debug, Default)]
pub struct ServiceCost {
    /// Which procedure ran (None for garbled requests).
    pub proc: Option<NfsProc>,
    /// Buffer-cache search steps.
    pub cache_steps: u64,
    /// Directory entries scanned on uncached lookups.
    pub dir_scan_entries: u64,
    /// Bytes copied between the buffer cache and mbufs.
    pub bytes_copied: u64,
    /// Disk reads issued, in bytes each.
    pub disk_reads: Vec<usize>,
    /// Disk writes issued, in bytes each (write-through: they complete
    /// before the reply leaves).
    pub disk_writes: Vec<usize>,
    /// The request hit the duplicate-request cache.
    pub dup_hit: bool,
}

/// Per-procedure service counters.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Calls served, indexed by procedure wire number.
    pub calls: [u64; 20],
    /// Garbled requests.
    pub garbage: u64,
    /// Duplicate-cache hits.
    pub dup_hits: u64,
    /// Leases granted to a client that did not already hold one.
    pub leases_issued: u64,
    /// Lease terms extended — explicit GETLEASE renewals plus renewals
    /// piggybacked on normal RPCs from the holder.
    pub leases_renewed: u64,
    /// Recall callbacks queued to conflicting holders.
    pub lease_recalls: u64,
    /// `TryLater` replies sent while waiting for a holder to vacate
    /// (includes reads/grants deferred by the post-reboot grace).
    pub lease_vacate_waits: u64,
    /// Leases that lapsed unrenewed and were purged from the table.
    pub lease_expiries: u64,
}

impl ServerStats {
    /// Calls served for one procedure.
    pub fn count(&self, proc: NfsProc) -> u64 {
        self.calls[proc.to_wire() as usize]
    }

    /// Total calls served.
    pub fn total(&self) -> u64 {
        self.calls.iter().sum()
    }
}

/// The duplicate-request cache, per the tuned server in the paper.
///
/// Keyed by `(client, xid, proc)`: xids are drawn per client machine, so
/// two independent clients routinely reuse the same value — a Remove
/// retransmitted by one host must never be answered with a reply cached
/// for another host's Create (the real BSD cache folds the client's
/// address and port into the match for the same reason). The `proc`
/// component guards against one client's counter colliding across
/// procedures after wraparound or reboot. Lookups are O(1) via an index
/// map; eviction is FIFO over a ring of keys, and re-inserting a live key
/// refreshes the stored reply without growing the ring.
struct DupCache {
    index: std::collections::HashMap<(u32, u32, u32), MbufChain>,
    ring: VecDeque<(u32, u32, u32)>,
    cap: usize,
}

impl DupCache {
    fn new(cap: usize) -> Self {
        DupCache {
            index: std::collections::HashMap::new(),
            ring: VecDeque::new(),
            cap,
        }
    }

    fn get(&self, client: u32, xid: u32, proc: NfsProc) -> Option<MbufChain> {
        self.index.get(&(client, xid, proc.to_wire())).cloned()
    }

    fn put(&mut self, client: u32, xid: u32, proc: NfsProc, reply: MbufChain) {
        let key = (client, xid, proc.to_wire());
        if self.index.insert(key, reply).is_some() {
            return; // live key refreshed; ring position unchanged
        }
        self.ring.push_back(key);
        if self.ring.len() > self.cap {
            if let Some(old) = self.ring.pop_front() {
                self.index.remove(&old);
            }
        }
    }
}

/// Duplicate-cache ring slots reserved per client machine; the total
/// capacity scales with the mount count so a crowd of retransmitting
/// clients cannot flush each other's entries before the retry arrives.
const DUP_CACHE_PER_CLIENT: usize = 128;

/// One read-lease hold on a file.
#[derive(Debug)]
struct ReadHold {
    client: u32,
    expiry: SimTime,
    /// A recall callback has already been queued to this holder.
    recalled: bool,
}

/// The lease state of one file: shared readers or one exclusive writer.
#[derive(Debug)]
enum Lease {
    Read(Vec<ReadHold>),
    Write {
        holder: u32,
        expiry: SimTime,
        recalled: bool,
    },
}

/// The NQNFS lease table (volatile — lost on reboot, which is exactly
/// why the reboot grace period exists).
///
/// Entries are only ever touched by inode-keyed lookups, never by map
/// iteration, so the table adds no hash-order nondeterminism to the
/// simulation. Recall callbacks queue per holder and drain one per
/// reply trailer the next time that client talks to the server — the
/// protocol is strictly request/response, so there is no push channel.
#[derive(Debug, Default)]
struct LeaseTable {
    entries: std::collections::HashMap<u32, Lease>,
    recalls: std::collections::HashMap<u32, VecDeque<u32>>,
}

impl LeaseTable {
    /// Purges lapsed holds on one file, counting them.
    fn purge_expired(&mut self, ino: u32, now: SimTime, stats: &mut ServerStats) {
        let Some(lease) = self.entries.get_mut(&ino) else {
            return;
        };
        let empty = match lease {
            Lease::Write { expiry, .. } => {
                if *expiry <= now {
                    stats.lease_expiries += 1;
                    true
                } else {
                    false
                }
            }
            Lease::Read(holds) => {
                let before = holds.len();
                holds.retain(|h| h.expiry > now);
                stats.lease_expiries += (before - holds.len()) as u64;
                holds.is_empty()
            }
        };
        if empty {
            self.entries.remove(&ino);
        }
    }

    /// Admission gate for an access to `ino`. Renews the caller's own
    /// hold (renewal piggybacked on normal RPCs); a conflicting hold by
    /// another client gets one recall callback queued and the caller a
    /// `TryLater` — the bounded vacate wait.
    fn gate(
        &mut self,
        ino: u32,
        client: u32,
        write: bool,
        now: SimTime,
        stats: &mut ServerStats,
    ) -> Result<(), NfsStatus> {
        self.purge_expired(ino, now, stats);
        let mut queue: Vec<u32> = Vec::new();
        let mut verdict = Ok(());
        if let Some(lease) = self.entries.get_mut(&ino) {
            match lease {
                Lease::Write {
                    holder,
                    expiry,
                    recalled,
                } => {
                    if *holder == client {
                        *expiry = now + LEASE_TERM;
                        stats.leases_renewed += 1;
                    } else {
                        if !*recalled {
                            *recalled = true;
                            queue.push(*holder);
                        }
                        verdict = Err(NfsStatus::TryLater);
                    }
                }
                Lease::Read(holds) => {
                    if write {
                        let mut conflict = false;
                        for h in holds.iter_mut() {
                            if h.client == client {
                                continue;
                            }
                            conflict = true;
                            if !h.recalled {
                                h.recalled = true;
                                queue.push(h.client);
                            }
                        }
                        if conflict {
                            verdict = Err(NfsStatus::TryLater);
                        }
                    } else if let Some(h) = holds.iter_mut().find(|h| h.client == client) {
                        h.expiry = now + LEASE_TERM;
                        stats.leases_renewed += 1;
                    }
                }
            }
        }
        for holder in queue {
            stats.lease_recalls += 1;
            self.recalls.entry(holder).or_default().push_back(ino);
        }
        if verdict.is_err() {
            stats.lease_vacate_waits += 1;
        }
        verdict
    }

    /// Records a grant after [`LeaseTable::gate`] admitted the caller.
    fn grant(&mut self, ino: u32, client: u32, write: bool, now: SimTime, stats: &mut ServerStats) {
        let expiry = now + LEASE_TERM;
        let next = match self.entries.remove(&ino) {
            Some(Lease::Write { holder, .. }) if holder == client => {
                stats.leases_renewed += 1;
                // A write lease covers reads too; keep the stronger kind.
                Lease::Write {
                    holder,
                    expiry,
                    recalled: false,
                }
            }
            Some(Lease::Read(mut holds)) => {
                if write {
                    // The gate admitted the writer, so every remaining
                    // hold is its own: a sole-reader upgrade.
                    stats.leases_issued += 1;
                    Lease::Write {
                        holder: client,
                        expiry,
                        recalled: false,
                    }
                } else {
                    match holds.iter_mut().find(|h| h.client == client) {
                        Some(h) => {
                            h.expiry = expiry;
                            stats.leases_renewed += 1;
                        }
                        None => {
                            stats.leases_issued += 1;
                            holds.push(ReadHold {
                                client,
                                expiry,
                                recalled: false,
                            });
                        }
                    }
                    Lease::Read(holds)
                }
            }
            // No lease held (a conflicting write hold cannot reach here —
            // the gate rejected it; overwriting would still be safe).
            _ => {
                stats.leases_issued += 1;
                if write {
                    Lease::Write {
                        holder: client,
                        expiry,
                        recalled: false,
                    }
                } else {
                    Lease::Read(vec![ReadHold {
                        client,
                        expiry,
                        recalled: false,
                    }])
                }
            }
        };
        self.entries.insert(ino, next);
    }

    /// Drops `client`'s hold on `ino` (voluntary vacate after a recall,
    /// or teardown on remove).
    fn release(&mut self, ino: u32, client: u32) {
        let empty = match self.entries.get_mut(&ino) {
            Some(Lease::Write { holder, .. }) => *holder == client,
            Some(Lease::Read(holds)) => {
                holds.retain(|h| h.client != client);
                holds.is_empty()
            }
            None => return,
        };
        if empty {
            self.entries.remove(&ino);
        }
    }

    /// The next recall callback to piggyback on a reply to `client`
    /// (0 = none).
    fn next_recall(&mut self, client: u32) -> u32 {
        self.recalls
            .get_mut(&client)
            .and_then(|q| q.pop_front())
            .unwrap_or(0)
    }
}

/// The NFS server instance.
pub struct NfsServer {
    cfg: ServerConfig,
    fs: MemFs,
    namecache: NameCache,
    bufcache: BufCache,
    dupcache: Option<DupCache>,
    /// Duplicate-cache capacity in force ([`DUP_CACHE_PER_CLIENT`] ×
    /// client count); survives [`NfsServer::reboot`] because it models
    /// the compiled-in table size, not volatile state.
    dup_cache_cap: usize,
    meter: CopyMeter,
    stats: ServerStats,
    /// Recycled buffer for READ data on its way from the filesystem
    /// into an mbuf chain, so steady-state reads don't allocate.
    read_scratch: Vec<u8>,
    /// Boot epoch, stamped into every issued file handle's `fsid` field
    /// and bumped on reboot: handles minted before a crash come back
    /// `NfsStatus::Stale` (the root is exempt — the MOUNT protocol
    /// re-derives it), forcing clients to re-lookup their paths.
    epoch: u32,
    /// NQNFS lease state (empty and inert unless `cfg.leases`).
    leases: LeaseTable,
    /// Set by [`NfsServer::reboot`]; the first request afterwards arms
    /// `lease_grace_until` (reboot happens outside virtual time, so the
    /// grace clock starts when the server first hears a client).
    lease_grace_pending: bool,
    /// Until this instant the rebooted server defers reads and lease
    /// grants with `TryLater`: pre-crash leases it no longer remembers
    /// must lapse (and their holders' write-behind data land) before it
    /// serves state — the reboot-wait rule.
    lease_grace_until: SimTime,
}

impl NfsServer {
    /// Creates a server exporting a fresh filesystem.
    pub fn new(cfg: ServerConfig, now: SimTime) -> Self {
        let mut namecache = NameCache::new(512);
        namecache.set_enabled(cfg.name_cache);
        let mut bufcache = BufCache::new(cfg.cache_org, cfg.bufcache_blocks);
        bufcache.set_ambient(cfg.ambient_blocks);
        NfsServer {
            cfg,
            fs: MemFs::new(now),
            namecache,
            bufcache,
            dupcache: cfg.dup_cache.then(|| DupCache::new(DUP_CACHE_PER_CLIENT)),
            dup_cache_cap: DUP_CACHE_PER_CLIENT,
            meter: CopyMeter::new(),
            stats: ServerStats::default(),
            read_scratch: Vec::new(),
            epoch: 1,
            leases: LeaseTable::default(),
            lease_grace_pending: false,
            lease_grace_until: SimTime::ZERO,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// The exported filesystem (for out-of-band test preloading).
    pub fn fs(&self) -> &MemFs {
        &self.fs
    }

    /// Mutable access to the exported filesystem (test preloading only;
    /// bypasses all caching and costing).
    pub fn fs_mut(&mut self) -> &mut MemFs {
        &mut self.fs
    }

    /// Service statistics.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Simulates a server crash and reboot: every volatile structure
    /// (name cache, buffer cache, duplicate-request cache) is lost, and
    /// the boot epoch advances so file handles minted before the crash
    /// are answered with `NfsStatus::Stale` — the statelessness of the
    /// protocol means clients recover by re-looking-up their paths from
    /// the root (which the MOUNT protocol re-derives, so it stays valid).
    pub fn reboot(&mut self) {
        self.epoch += 1;
        let mut namecache = NameCache::new(512);
        namecache.set_enabled(self.cfg.name_cache);
        self.namecache = namecache;
        let mut bufcache = BufCache::new(self.cfg.cache_org, self.cfg.bufcache_blocks);
        bufcache.set_ambient(self.cfg.ambient_blocks);
        self.bufcache = bufcache;
        if self.cfg.dup_cache {
            self.dupcache = Some(DupCache::new(self.dup_cache_cap));
        }
        // The lease table is volatile: all grants and queued recalls are
        // forgotten. Clients out there may still hold unexpired leases,
        // so the rebooted server must wait out the maximum term before
        // serving reads or granting new leases (armed lazily — reboot
        // happens outside virtual time).
        self.leases = LeaseTable::default();
        if self.cfg.leases && !self.cfg.lease_no_reboot_grace {
            self.lease_grace_pending = true;
        }
    }

    /// Sizes the duplicate-request cache for a community of `clients`
    /// mounts ([`DUP_CACHE_PER_CLIENT`] ring slots each). Existing cached
    /// replies are discarded — call this while wiring up a world, before
    /// traffic flows.
    pub fn set_client_count(&mut self, clients: usize) {
        self.dup_cache_cap = DUP_CACHE_PER_CLIENT * clients.max(1);
        if self.cfg.dup_cache {
            self.dupcache = Some(DupCache::new(self.dup_cache_cap));
        }
    }

    /// The root file handle, as the MOUNT protocol would return it.
    pub fn root_handle(&self) -> FileHandle {
        self.handle_for(self.fs.root()).expect("root exists")
    }

    /// Builds the file handle for an inode, stamped with the current
    /// boot epoch.
    pub fn handle_for(&self, ino: InodeId) -> Result<FileHandle, FsError> {
        Ok(FileHandle {
            fsid: self.epoch,
            ino: ino.0,
            gen: self.fs.generation(ino)?,
        })
    }

    fn resolve(&self, fh: &FileHandle) -> Result<InodeId, NfsStatus> {
        let ino = InodeId(fh.ino);
        // Handles minted before the last reboot are stale, except the
        // root: the MOUNT protocol hands the root handle out again, so
        // clients always have a valid place to restart their lookups.
        if fh.fsid != self.epoch && ino != self.fs.root() {
            return Err(NfsStatus::Stale);
        }
        self.fs
            .check_handle(ino, fh.gen)
            .map_err(|_| NfsStatus::Stale)?;
        Ok(ino)
    }

    /// Services one RPC request from client 0, producing the reply and
    /// its cost. Single-client convenience wrapper over
    /// [`NfsServer::service_from`].
    pub fn service(&mut self, now: SimTime, request: &MbufChain) -> (MbufChain, ServiceCost) {
        self.service_from(now, request, 0)
    }

    /// Services one RPC request, producing the reply and its cost.
    ///
    /// `client` identifies the requesting machine (in BSD terms, the
    /// source address/port of the datagram) and scopes the duplicate-
    /// request cache so xids reused across independent clients never
    /// cross-match.
    pub fn service_from(
        &mut self,
        now: SimTime,
        request: &MbufChain,
        client: u32,
    ) -> (MbufChain, ServiceCost) {
        let mut cost = ServiceCost::default();
        let mut dec = XdrDecoder::new(request);
        let header = match CallHeader::decode(&mut dec) {
            Ok(h) => h,
            Err(_) => {
                self.stats.garbage += 1;
                // Unparseable header: no reply possible (no xid). Return
                // an empty chain the caller drops.
                return (MbufChain::new(), cost);
            }
        };
        let xid = header.xid;
        let vers_ok =
            header.vers == NFS_VERSION || (header.vers == NQNFS_VERSION && self.cfg.leases);
        if header.prog != NFS_PROGRAM || !vers_ok {
            let mut reply = MbufChain::new();
            ReplyHeader {
                xid,
                stat: AcceptStat::ProgUnavail,
            }
            .encode(&mut reply, &mut self.meter);
            return (reply, cost);
        }
        // NQNFS callers get a one-word recall trailer on every success
        // reply; classic-version traffic stays byte-identical.
        let nq = header.vers == NQNFS_VERSION;
        if self.lease_grace_pending {
            self.lease_grace_pending = false;
            self.lease_grace_until = now + LEASE_TERM;
        }
        let proc_supported = |p: NfsProc| match p {
            NfsProc::ReaddirLookup => self.cfg.readdir_lookup,
            NfsProc::Getlease => nq,
            _ => true,
        };
        let Some(proc) = NfsProc::from_wire(header.proc).filter(|p| proc_supported(*p)) else {
            let mut reply = MbufChain::new();
            ReplyHeader {
                xid,
                stat: AcceptStat::ProcUnavail,
            }
            .encode(&mut reply, &mut self.meter);
            return (reply, cost);
        };
        cost.proc = Some(proc);
        // Duplicate-request cache: protect non-idempotent procedures
        // against retransmitted requests.
        if !proc.is_idempotent() {
            if let Some(dc) = &self.dupcache {
                if let Some(reply) = dc.get(client, xid, proc) {
                    self.stats.dup_hits += 1;
                    cost.dup_hit = true;
                    return (reply, cost);
                }
            }
        }
        let args = match decode_args(proc, &mut dec) {
            Ok(a) => a,
            Err(_) => {
                self.stats.garbage += 1;
                let mut reply = MbufChain::new();
                ReplyHeader {
                    xid,
                    stat: AcceptStat::GarbageArgs,
                }
                .encode(&mut reply, &mut self.meter);
                return (reply, cost);
            }
        };
        self.stats.calls[proc.to_wire() as usize] += 1;
        let mut reply = MbufChain::new();
        ReplyHeader {
            xid,
            stat: AcceptStat::Success,
        }
        .encode(&mut reply, &mut self.meter);
        if nq {
            // Piggybacked eviction callback: the inode of one file whose
            // lease this client must vacate (0 = none). Replayed from the
            // dup cache this re-delivers a stale recall, which a client
            // honors by a redundant flush — harmless.
            let recall = self.leases.next_recall(client);
            XdrEncoder::new(&mut reply, &mut self.meter).put_u32(recall);
        }
        self.dispatch(now, proc, args, client, &mut reply, &mut cost);
        if !proc.is_idempotent() {
            if let Some(dc) = &mut self.dupcache {
                dc.put(client, xid, proc, reply.clone());
            }
        }
        (reply, cost)
    }

    /// Whether the post-reboot lease grace period is still in force.
    fn in_grace(&self, now: SimTime) -> bool {
        self.cfg.leases && now < self.lease_grace_until
    }

    /// Lease admission for a data access: during the reboot grace every
    /// read defers; otherwise the lease table arbitrates. Inert unless
    /// leases are enabled. Resolution failures pass — the handler will
    /// report the real error.
    fn lease_admit(
        &mut self,
        fh: &FileHandle,
        client: u32,
        write: bool,
        now: SimTime,
    ) -> Result<(), NfsStatus> {
        if !self.cfg.leases {
            return Ok(());
        }
        if !write && self.in_grace(now) {
            self.stats.lease_vacate_waits += 1;
            return Err(NfsStatus::TryLater);
        }
        let Ok(ino) = self.resolve(fh) else {
            return Ok(());
        };
        self.leases.gate(ino.0, client, write, now, &mut self.stats)
    }

    fn do_getlease(
        &mut self,
        fh: &FileHandle,
        mode: u32,
        client: u32,
        now: SimTime,
    ) -> Result<(u32, Option<renofs_vfs::Vattr>), NfsStatus> {
        let ino = self.resolve(fh)?;
        if mode == LEASE_MODE_RELEASE {
            self.leases.release(ino.0, client);
            return Ok((0, None));
        }
        if self.in_grace(now) {
            self.stats.lease_vacate_waits += 1;
            return Err(NfsStatus::TryLater);
        }
        let write = mode == LEASE_MODE_WRITE;
        self.leases
            .gate(ino.0, client, write, now, &mut self.stats)?;
        self.leases
            .grant(ino.0, client, write, now, &mut self.stats);
        // The grant doubles as a GETATTR so acquisition never costs a
        // separate revalidation RPC.
        let attr = self.fs.getattr(ino).map_err(NfsStatus::from)?;
        Ok((proto::LEASE_TERM_MS, Some(attr)))
    }

    fn dispatch(
        &mut self,
        now: SimTime,
        proc: NfsProc,
        args: NfsArgs,
        client: u32,
        reply: &mut MbufChain,
        cost: &mut ServiceCost,
    ) {
        match (proc, args) {
            (NfsProc::Null, _) => {}
            (NfsProc::Getattr, NfsArgs::Handle(fh)) => {
                let res = self
                    .resolve(&fh)
                    .and_then(|ino| self.fs.getattr(ino).map_err(NfsStatus::from));
                cost.cache_steps += 1;
                results::put_attrstat(reply, &mut self.meter, &res);
            }
            (NfsProc::Setattr, NfsArgs::Setattr(fh, sattr)) => {
                let res = self.lease_admit(&fh, client, true, now).and_then(|()| {
                    let ino = self.resolve(&fh)?;
                    self.fs
                        .setattr(ino, sattr.size, sattr.mode, sattr.uid, sattr.gid, now)
                        .map_err(NfsStatus::from)
                });
                if res.is_ok() {
                    cost.disk_writes.push(512); // inode
                }
                results::put_attrstat(reply, &mut self.meter, &res);
            }
            (NfsProc::Lookup, NfsArgs::DirOp(fh, name)) => {
                let res = self.do_lookup(&fh, &name, cost);
                results::put_diropres(reply, &mut self.meter, &res);
            }
            (NfsProc::Readlink, NfsArgs::Handle(fh)) => {
                let res = self
                    .resolve(&fh)
                    .and_then(|ino| self.fs.readlink(ino).map_err(NfsStatus::from));
                results::put_readlinkres(reply, &mut self.meter, &res);
            }
            (NfsProc::Read, NfsArgs::Read(fh, offset, count)) => {
                let res = match self.lease_admit(&fh, client, false, now) {
                    Ok(()) => self.do_read(&fh, offset, count, now, cost),
                    Err(s) => Err(s),
                };
                results::put_readres(reply, &mut self.meter, res);
            }
            (NfsProc::Write, NfsArgs::Write(fh, offset, data)) => {
                let res = self
                    .lease_admit(&fh, client, true, now)
                    .and_then(|()| self.do_write(&fh, offset, data, now, cost));
                results::put_attrstat(reply, &mut self.meter, &res);
            }
            (NfsProc::Create, NfsArgs::Create(fh, name, sattr)) => {
                let res = self.do_create(&fh, &name, &sattr, now, cost);
                results::put_diropres(reply, &mut self.meter, &res);
            }
            (NfsProc::Mkdir, NfsArgs::Create(fh, name, _sattr)) => {
                let res = self.resolve(&fh).and_then(|dir| {
                    let id = self
                        .fs
                        .mkdir(dir, &name, 0o755, now)
                        .map_err(NfsStatus::from)?;
                    cost.disk_writes.push(512); // dir block
                    cost.disk_writes.push(512); // inode
                    self.namecache
                        .enter(VnodeId(dir.0 as u64), &name, VnodeId(id.0 as u64));
                    let h = self.handle_for(id).map_err(NfsStatus::from)?;
                    let a = self.fs.getattr(id).map_err(NfsStatus::from)?;
                    Ok((h, a))
                });
                results::put_diropres(reply, &mut self.meter, &res);
            }
            (NfsProc::Remove, NfsArgs::DirOp(fh, name)) => {
                let res = self.resolve(&fh).and_then(|dir| {
                    let target = self.fs.lookup(dir, &name).ok();
                    // Removing a leased file needs the same write
                    // admission as writing it; a conflicting holder is
                    // recalled and the remover told to retry.
                    if let Some(t) = target {
                        if self.cfg.leases {
                            self.leases.gate(t.0, client, true, now, &mut self.stats)?;
                        }
                    }
                    self.fs.remove(dir, &name, now).map_err(NfsStatus::from)?;
                    self.namecache.invalidate(VnodeId(dir.0 as u64), &name);
                    if let Some(t) = target {
                        self.namecache.purge_vnode(VnodeId(t.0 as u64));
                        self.bufcache.purge_vnode(VnodeId(t.0 as u64));
                        self.leases.entries.remove(&t.0);
                    }
                    cost.disk_writes.push(512); // dir block
                    cost.disk_writes.push(512); // inode free
                    Ok(())
                });
                results::put_stat(reply, &mut self.meter, status_of(res));
            }
            (NfsProc::Rmdir, NfsArgs::DirOp(fh, name)) => {
                let res = self.resolve(&fh).and_then(|dir| {
                    let target = self.fs.lookup(dir, &name).ok();
                    self.fs.rmdir(dir, &name, now).map_err(NfsStatus::from)?;
                    self.namecache.invalidate(VnodeId(dir.0 as u64), &name);
                    if let Some(t) = target {
                        self.namecache.purge_vnode(VnodeId(t.0 as u64));
                    }
                    cost.disk_writes.push(512);
                    cost.disk_writes.push(512);
                    Ok(())
                });
                results::put_stat(reply, &mut self.meter, status_of(res));
            }
            (NfsProc::Rename, NfsArgs::Rename(ffh, fname, tfh, tname)) => {
                let res = self.resolve(&ffh).and_then(|fdir| {
                    let tdir = self.resolve(&tfh)?;
                    self.fs
                        .rename(fdir, &fname, tdir, &tname, now)
                        .map_err(NfsStatus::from)?;
                    self.namecache.invalidate(VnodeId(fdir.0 as u64), &fname);
                    self.namecache.invalidate(VnodeId(tdir.0 as u64), &tname);
                    cost.disk_writes.push(512);
                    cost.disk_writes.push(512);
                    Ok(())
                });
                results::put_stat(reply, &mut self.meter, status_of(res));
            }
            (NfsProc::Link, NfsArgs::Link(target, dirfh, name)) => {
                let res = self.resolve(&target).and_then(|t| {
                    let dir = self.resolve(&dirfh)?;
                    self.fs.link(t, dir, &name, now).map_err(NfsStatus::from)?;
                    cost.disk_writes.push(512);
                    cost.disk_writes.push(512);
                    Ok(())
                });
                results::put_stat(reply, &mut self.meter, status_of(res));
            }
            (NfsProc::Symlink, NfsArgs::Symlink(dirfh, name, path)) => {
                let res = self.resolve(&dirfh).and_then(|dir| {
                    self.fs
                        .symlink(dir, &name, &path, now)
                        .map_err(NfsStatus::from)?;
                    cost.disk_writes.push(512);
                    cost.disk_writes.push(512);
                    Ok(())
                });
                results::put_stat(reply, &mut self.meter, status_of(res));
            }
            (NfsProc::Readdir, NfsArgs::Readdir(fh, cookie, count)) => {
                let res = self.do_readdir(&fh, cookie, count, cost);
                results::put_readdirres(reply, &mut self.meter, &res);
            }
            (NfsProc::ReaddirLookup, NfsArgs::ReaddirLookup(fh, cookie, count)) => {
                let res = self.do_readdir_lookup(&fh, cookie, count, cost);
                results::put_readdirplusres(reply, &mut self.meter, &res);
            }
            (NfsProc::Statfs, NfsArgs::Handle(fh)) => {
                let res = self.resolve(&fh).map(|_| {
                    let (bsize, blocks, bfree) = self.fs.statfs();
                    (proto::NFS_MAXDATA as u32, bsize, blocks, bfree, bfree)
                });
                results::put_statfsres(reply, &mut self.meter, &res);
            }
            (NfsProc::Getlease, NfsArgs::Getlease(fh, mode)) => {
                let res = self.do_getlease(&fh, mode, client, now);
                cost.cache_steps += 1;
                results::put_leaseres(reply, &mut self.meter, &res);
            }
            _ => {
                // Argument/procedure mismatch can't happen via decode_args.
                results::put_stat(reply, &mut self.meter, NfsStatus::Io);
            }
        }
    }

    fn do_lookup(
        &mut self,
        fh: &FileHandle,
        name: &str,
        cost: &mut ServiceCost,
    ) -> Result<(FileHandle, renofs_vfs::Vattr), NfsStatus> {
        let dir = self.resolve(fh)?;
        let dv = VnodeId(dir.0 as u64);
        let cached = self.namecache.lookup(dv, name);
        let id = match cached {
            Some(v) => InodeId(v.0 as u32),
            None => {
                // Scan the directory: read its blocks through the buffer
                // cache, comparing entries.
                let entries = self.fs.dir_len(dir).map_err(NfsStatus::from)?;
                cost.dir_scan_entries += (entries as u64).div_ceil(2);
                let dir_attr = self.fs.getattr(dir).map_err(NfsStatus::from)?;
                let dir_blocks = (dir_attr.size as usize).div_ceil(BLOCK_SIZE).max(1);
                for blk in 0..dir_blocks as u64 {
                    let (hit, steps) = {
                        let (buf, steps) = self.bufcache.lookup(dv, blk);
                        (buf.is_some(), steps)
                    };
                    cost.cache_steps += steps;
                    if !hit {
                        cost.disk_reads.push(BLOCK_SIZE.min(dir_attr.size as usize));
                        self.bufcache
                            .insert(dv, blk, Buf::new_valid(vec![0; BLOCK_SIZE]));
                    }
                }
                let id = self.fs.lookup(dir, name).map_err(NfsStatus::from)?;
                self.namecache.enter(dv, name, VnodeId(id.0 as u64));
                id
            }
        };
        let h = self.handle_for(id).map_err(NfsStatus::from)?;
        let a = self.fs.getattr(id).map_err(NfsStatus::from)?;
        Ok((h, a))
    }

    fn do_read(
        &mut self,
        fh: &FileHandle,
        offset: u32,
        count: u32,
        now: SimTime,
        cost: &mut ServiceCost,
    ) -> Result<(renofs_vfs::Vattr, MbufChain), NfsStatus> {
        let ino = self.resolve(fh)?;
        let count = count.min(proto::NFS_MAXDATA as u32);
        let v = VnodeId(ino.0 as u64);
        // Touch every block the range covers through the buffer cache.
        let first_blk = (offset as usize) / BLOCK_SIZE;
        let last_blk = (offset as usize + count as usize).saturating_sub(1) / BLOCK_SIZE;
        let attr = self.fs.getattr(ino).map_err(NfsStatus::from)?;
        for blk in first_blk..=last_blk {
            if blk * BLOCK_SIZE >= attr.size as usize && attr.size > 0 {
                break;
            }
            let (hit, steps) = {
                let (buf, steps) = self.bufcache.lookup(v, blk as u64);
                (buf.is_some(), steps)
            };
            cost.cache_steps += steps;
            if !hit {
                cost.disk_reads.push(BLOCK_SIZE);
                let data = self
                    .fs
                    .read(ino, (blk * BLOCK_SIZE) as u32, BLOCK_SIZE as u32, now)
                    .map_err(NfsStatus::from)?;
                self.bufcache.insert(v, blk as u64, Buf::new_valid(data));
            }
        }
        let mut data = std::mem::take(&mut self.read_scratch);
        let read = self.fs.read_into(ino, offset, count, now, &mut data);
        let attr = match read.and_then(|_| self.fs.getattr(ino)) {
            Ok(attr) => attr,
            Err(e) => {
                self.read_scratch = data;
                return Err(NfsStatus::from(e));
            }
        };
        // Buffer cache -> mbuf: the paper's remaining third bottleneck,
        // unless the page-loaning extension is on.
        let chain = if self.cfg.loan_read_pages {
            let mut scratch = CopyMeter::new();
            MbufChain::from_slice(&data, &mut scratch)
        } else {
            cost.bytes_copied += data.len() as u64;
            MbufChain::from_slice(&data, &mut self.meter)
        };
        self.read_scratch = data;
        Ok((attr, chain))
    }

    fn do_write(
        &mut self,
        fh: &FileHandle,
        offset: u32,
        data: MbufChain,
        now: SimTime,
        cost: &mut ServiceCost,
    ) -> Result<renofs_vfs::Vattr, NfsStatus> {
        let ino = self.resolve(fh)?;
        // mbuf -> buffer cache copy: charged both to the server's meter and
        // to the service cost (which prices it into simulated CPU time).
        let bytes = data.to_vec(&mut self.meter);
        cost.bytes_copied += bytes.len() as u64;
        let attr = self
            .fs
            .write(ino, offset, &bytes, now)
            .map_err(NfsStatus::from)?;
        // Update the cached block(s).
        let v = VnodeId(ino.0 as u64);
        let first_blk = (offset as usize) / BLOCK_SIZE;
        let last_blk = (offset as usize + bytes.len()).saturating_sub(1) / BLOCK_SIZE;
        for blk in first_blk..=last_blk {
            let (found, steps) = {
                let (buf, steps) = self.bufcache.lookup(v, blk as u64);
                (buf.is_some(), steps)
            };
            cost.cache_steps += steps;
            if found {
                let fresh = self
                    .fs
                    .read(ino, (blk * BLOCK_SIZE) as u32, BLOCK_SIZE as u32, now)
                    .map_err(NfsStatus::from)?;
                if let (Some(buf), _) = self.bufcache.lookup(v, blk as u64) {
                    buf.merge_read(&fresh);
                    buf.clear_dirty();
                }
            }
        }
        // The stateless write-through: data (+ inode, + indirect for
        // large files) must be on disk before the reply — the paper's
        // "every write RPC requires 1-3 disk writes on the server".
        cost.disk_writes.push(bytes.len());
        cost.disk_writes.push(512); // inode
        if offset as usize >= 12 * BLOCK_SIZE {
            cost.disk_writes.push(512); // indirect block
        }
        Ok(attr)
    }

    fn do_create(
        &mut self,
        fh: &FileHandle,
        name: &str,
        sattr: &crate::proto::Sattr,
        now: SimTime,
        cost: &mut ServiceCost,
    ) -> Result<(FileHandle, renofs_vfs::Vattr), NfsStatus> {
        let dir = self.resolve(fh)?;
        let id = self
            .fs
            .create(dir, name, sattr.mode.unwrap_or(0o644), now)
            .map_err(NfsStatus::from)?;
        if let Some(size) = sattr.size {
            self.fs
                .setattr(id, Some(size), None, None, None, now)
                .map_err(NfsStatus::from)?;
        }
        self.namecache
            .enter(VnodeId(dir.0 as u64), name, VnodeId(id.0 as u64));
        cost.disk_writes.push(512); // dir block
        cost.disk_writes.push(512); // inode
        let h = self.handle_for(id).map_err(NfsStatus::from)?;
        let a = self.fs.getattr(id).map_err(NfsStatus::from)?;
        Ok((h, a))
    }

    fn do_readdir(
        &mut self,
        fh: &FileHandle,
        cookie: u32,
        count: u32,
        cost: &mut ServiceCost,
    ) -> Result<(Vec<DirEntry>, bool), NfsStatus> {
        let dir = self.resolve(fh)?;
        // Entries that fit the requested byte count (~24 bytes + name).
        let max_entries = ((count as usize) / 32).clamp(1, 512);
        let dv = VnodeId(dir.0 as u64);
        let attr = self.fs.getattr(dir).map_err(NfsStatus::from)?;
        let dir_blocks = (attr.size as usize).div_ceil(BLOCK_SIZE).max(1);
        for blk in 0..dir_blocks as u64 {
            let (hit, steps) = {
                let (buf, steps) = self.bufcache.lookup(dv, blk);
                (buf.is_some(), steps)
            };
            cost.cache_steps += steps;
            if !hit {
                cost.disk_reads.push(BLOCK_SIZE.min(attr.size as usize));
                self.bufcache
                    .insert(dv, blk, Buf::new_valid(vec![0; BLOCK_SIZE]));
            }
        }
        let (raw, eof) = self
            .fs
            .readdir(dir, cookie, max_entries)
            .map_err(NfsStatus::from)?;
        let entries: Vec<DirEntry> = raw
            .into_iter()
            .map(|(cookie, name, id)| DirEntry {
                fileid: id.0,
                name,
                cookie,
            })
            .collect();
        cost.bytes_copied += entries
            .iter()
            .map(|e| 24 + e.name.len() as u64)
            .sum::<u64>();
        Ok((entries, eof))
    }
}

impl NfsServer {
    fn do_readdir_lookup(
        &mut self,
        fh: &FileHandle,
        cookie: u32,
        count: u32,
        cost: &mut ServiceCost,
    ) -> Result<(Vec<DirEntryPlus>, bool), NfsStatus> {
        let (entries, eof) = self.do_readdir(fh, cookie, count, cost)?;
        let dir = self.resolve(fh)?;
        let dv = VnodeId(dir.0 as u64);
        let mut out = Vec::with_capacity(entries.len());
        for e in entries {
            let id = InodeId(e.fileid);
            let fh = self.handle_for(id).map_err(NfsStatus::from)?;
            let attr = self.fs.getattr(id).map_err(NfsStatus::from)?;
            // Each embedded lookup still touches the caches, but the
            // per-RPC protocol overhead is paid once.
            self.namecache.enter(dv, &e.name, VnodeId(id.0 as u64));
            cost.cache_steps += 1;
            out.push(DirEntryPlus { entry: e, fh, attr });
        }
        Ok((out, eof))
    }
}

fn status_of(res: Result<(), NfsStatus>) -> NfsStatus {
    match res {
        Ok(()) => NfsStatus::Ok,
        Err(s) => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renofs_sunrpc::AuthUnix;

    fn t(n: u64) -> SimTime {
        SimTime::from_secs(n)
    }

    /// Builds a complete call message.
    fn call(
        xid: u32,
        proc: NfsProc,
        args: impl FnOnce(&mut MbufChain, &mut CopyMeter),
    ) -> MbufChain {
        let mut meter = CopyMeter::new();
        let mut chain = MbufChain::new();
        CallHeader {
            xid,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc: proc.to_wire(),
            auth: AuthUnix::root("testclient"),
        }
        .encode(&mut chain, &mut meter);
        args(&mut chain, &mut meter);
        chain
    }

    fn reply_body(reply: &MbufChain) -> XdrDecoder<'_> {
        let mut dec = XdrDecoder::new(reply);
        let h = ReplyHeader::decode(&mut dec).unwrap();
        assert_eq!(h.stat, AcceptStat::Success);
        dec
    }

    fn server() -> NfsServer {
        NfsServer::new(ServerConfig::reno(), t(0))
    }

    #[test]
    fn null_proc() {
        let mut s = server();
        let req = call(1, NfsProc::Null, |_, _| {});
        let (reply, cost) = s.service(t(1), &req);
        let mut dec = XdrDecoder::new(&reply);
        let h = ReplyHeader::decode(&mut dec).unwrap();
        assert_eq!(h.xid, 1);
        assert_eq!(cost.proc, Some(NfsProc::Null));
        assert_eq!(dec.remaining(), 0);
    }

    #[test]
    fn getattr_root() {
        let mut s = server();
        let root = s.root_handle();
        let req = call(2, NfsProc::Getattr, |c, m| {
            proto::build::handle_args(c, m, &root)
        });
        let (reply, _) = s.service(t(1), &req);
        let mut dec = reply_body(&reply);
        let attr = results::get_attrstat(&mut dec).unwrap().unwrap();
        assert_eq!(attr.ftype, renofs_vfs::FileType::Directory);
    }

    #[test]
    fn create_write_read_cycle() {
        let mut s = server();
        let root = s.root_handle();
        // CREATE
        let req = call(3, NfsProc::Create, |c, m| {
            proto::build::create_args(c, m, &root, "data.bin", &proto::Sattr::default())
        });
        let (reply, cost) = s.service(t(1), &req);
        let (fh, attr) = results::get_diropres(&mut reply_body(&reply))
            .unwrap()
            .unwrap();
        assert_eq!(attr.size, 0);
        assert_eq!(cost.disk_writes.len(), 2, "dir block + inode");
        // WRITE 8K
        let payload: Vec<u8> = (0..8192u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut meter = CopyMeter::new();
        let data = MbufChain::from_slice(&payload, &mut meter);
        let req = call(4, NfsProc::Write, |c, m| {
            proto::build::write_args(c, m, &fh, 0, data)
        });
        let (reply, cost) = s.service(t(2), &req);
        let attr = results::get_attrstat(&mut reply_body(&reply))
            .unwrap()
            .unwrap();
        assert_eq!(attr.size, 8192);
        assert!(
            (2..=3).contains(&cost.disk_writes.len()),
            "1-3 disk writes per write RPC"
        );
        // READ back
        let req = call(5, NfsProc::Read, |c, m| {
            proto::build::read_args(c, m, &fh, 0, 8192)
        });
        let (reply, cost) = s.service(t(3), &req);
        let (attr, data) = results::get_readres(&mut reply_body(&reply))
            .unwrap()
            .unwrap();
        assert_eq!(attr.size, 8192);
        assert_eq!(data, payload);
        assert_eq!(cost.bytes_copied, 8192, "buffer cache -> mbuf copy");
    }

    #[test]
    fn read_cache_hit_avoids_disk() {
        let mut s = server();
        let root = s.root_handle();
        let ino = s.fs_mut().create(InodeId(0), "f", 0o644, t(0)).unwrap();
        s.fs_mut().write(ino, 0, &[9u8; 8192], t(0)).unwrap();
        let _ = root;
        let fh = s.handle_for(ino).unwrap();
        let read_req = |xid| {
            call(xid, NfsProc::Read, |c, m| {
                proto::build::read_args(c, m, &fh, 0, 8192)
            })
        };
        let (_, cost1) = s.service(t(1), &read_req(10));
        assert_eq!(cost1.disk_reads.len(), 1, "cold read hits disk");
        let (_, cost2) = s.service(t(2), &read_req(11));
        assert!(cost2.disk_reads.is_empty(), "warm read served from cache");
    }

    #[test]
    fn lookup_uses_name_cache() {
        let mut s = server();
        let root_ino = s.fs().root();
        for i in 0..50 {
            s.fs_mut()
                .create(root_ino, &format!("file{i}"), 0o644, t(0))
                .unwrap();
        }
        let root = s.root_handle();
        let lookup_req = |xid| {
            call(xid, NfsProc::Lookup, |c, m| {
                proto::build::dirop_args(c, m, &root, "file25")
            })
        };
        let (_, cost1) = s.service(t(1), &lookup_req(20));
        assert!(cost1.dir_scan_entries > 0, "cold lookup scans the dir");
        let (_, cost2) = s.service(t(2), &lookup_req(21));
        assert_eq!(cost2.dir_scan_entries, 0, "warm lookup hits name cache");
    }

    #[test]
    fn ultrix_config_skips_name_cache() {
        let mut s = NfsServer::new(ServerConfig::ultrix(), t(0));
        let root_ino = s.fs().root();
        s.fs_mut().create(root_ino, "f", 0o644, t(0)).unwrap();
        let root = s.root_handle();
        let lookup_req = |xid| {
            call(xid, NfsProc::Lookup, |c, m| {
                proto::build::dirop_args(c, m, &root, "f")
            })
        };
        let (_, c1) = s.service(t(1), &lookup_req(1));
        let (_, c2) = s.service(t(2), &lookup_req(2));
        assert!(c1.dir_scan_entries > 0);
        assert!(c2.dir_scan_entries > 0, "no name cache: scans every time");
    }

    #[test]
    fn stale_handle_detected() {
        let mut s = server();
        let root_ino = s.fs().root();
        let ino = s.fs_mut().create(root_ino, "doomed", 0o644, t(0)).unwrap();
        let fh = s.handle_for(ino).unwrap();
        s.fs_mut().remove(root_ino, "doomed", t(1)).unwrap();
        let req = call(30, NfsProc::Getattr, |c, m| {
            proto::build::handle_args(c, m, &fh)
        });
        let (reply, _) = s.service(t(2), &req);
        let res = results::get_attrstat(&mut reply_body(&reply)).unwrap();
        assert_eq!(res, Err(NfsStatus::Stale));
    }

    #[test]
    fn reboot_bumps_epoch_and_stales_old_handles() {
        let mut s = server();
        let root_ino = s.fs().root();
        let ino = s.fs_mut().create(root_ino, "kept", 0o644, t(0)).unwrap();
        let old_fh = s.handle_for(ino).unwrap();
        let old_root = s.root_handle();
        s.reboot();
        // The inode still exists on "disk", but the handle predates the
        // reboot: ESTALE.
        let req = call(40, NfsProc::Getattr, |c, m| {
            proto::build::handle_args(c, m, &old_fh)
        });
        let (reply, _) = s.service(t(2), &req);
        let res = results::get_attrstat(&mut reply_body(&reply)).unwrap();
        assert_eq!(res, Err(NfsStatus::Stale));
        // The pre-reboot root handle is exempt — lookups can restart.
        let req = call(41, NfsProc::Lookup, |c, m| {
            proto::build::dirop_args(c, m, &old_root, "kept")
        });
        let (reply, _) = s.service(t(3), &req);
        let res = results::get_diropres(&mut reply_body(&reply)).unwrap();
        let (fresh_fh, _) = res.expect("root-based lookup succeeds after reboot");
        assert_eq!(fresh_fh.ino, old_fh.ino, "same inode");
        assert_eq!(fresh_fh.gen, old_fh.gen, "same generation");
        assert_ne!(fresh_fh.fsid, old_fh.fsid, "new boot epoch");
        // And the re-looked-up handle works.
        let req = call(42, NfsProc::Getattr, |c, m| {
            proto::build::handle_args(c, m, &fresh_fh)
        });
        let (reply, _) = s.service(t(4), &req);
        let res = results::get_attrstat(&mut reply_body(&reply)).unwrap();
        assert!(res.is_ok(), "fresh handle valid: {res:?}");
    }

    #[test]
    fn lookup_noent() {
        let mut s = server();
        let root = s.root_handle();
        let req = call(31, NfsProc::Lookup, |c, m| {
            proto::build::dirop_args(c, m, &root, "nothing")
        });
        let (reply, _) = s.service(t(1), &req);
        let res = results::get_diropres(&mut reply_body(&reply)).unwrap();
        assert_eq!(res.unwrap_err(), NfsStatus::NoEnt);
    }

    #[test]
    fn duplicate_request_cache_suppresses_reexecution() {
        let mut cfg = ServerConfig::reno();
        cfg.dup_cache = true;
        let mut s = NfsServer::new(cfg, t(0));
        let root = s.root_handle();
        // Two identical CREATE requests with the same xid, as a
        // retransmission would produce.
        let mk = || {
            call(77, NfsProc::Create, |c, m| {
                proto::build::create_args(c, m, &root, "once", &proto::Sattr::default())
            })
        };
        let (r1, c1) = s.service(t(1), &mk());
        let (r2, c2) = s.service(t(2), &mk());
        assert!(!c1.dup_hit);
        assert!(c2.dup_hit, "retransmission served from dup cache");
        assert_eq!(
            r1.to_vec_for_test(),
            r2.to_vec_for_test(),
            "cached reply is byte-identical"
        );
        assert_eq!(s.stats().count(NfsProc::Create), 1, "executed once");
    }

    #[test]
    fn dup_cache_keys_on_proc_as_well_as_xid() {
        let mut cfg = ServerConfig::reno();
        cfg.dup_cache = true;
        let mut s = NfsServer::new(cfg, t(0));
        let root = s.root_handle();
        // CREATE with xid 50, then REMOVE reusing the same xid (a
        // wrapped or rebooted client). The remove must execute, not be
        // answered with the cached create reply.
        let creq = call(50, NfsProc::Create, |c, m| {
            proto::build::create_args(c, m, &root, "clash", &proto::Sattr::default())
        });
        let (_, c1) = s.service(t(1), &creq);
        assert!(!c1.dup_hit);
        let rreq = call(50, NfsProc::Remove, |c, m| {
            proto::build::dirop_args(c, m, &root, "clash")
        });
        let (r2, c2) = s.service(t(2), &rreq);
        assert!(!c2.dup_hit, "same xid, different proc: not a duplicate");
        assert_eq!(
            results::get_stat(&mut reply_body(&r2)).unwrap(),
            NfsStatus::Ok,
            "the remove really ran"
        );
        assert_eq!(s.stats().count(NfsProc::Remove), 1);
    }

    #[test]
    fn dup_cache_replays_remove_and_rename_without_reexecution() {
        let mut cfg = ServerConfig::reno();
        cfg.dup_cache = true;
        let mut s = NfsServer::new(cfg, t(0));
        let root = s.root_handle();
        let root_ino = s.fs().root();
        s.fs_mut().create(root_ino, "rm-me", 0o644, t(0)).unwrap();
        s.fs_mut().create(root_ino, "mv-me", 0o644, t(0)).unwrap();

        let rm = || {
            call(60, NfsProc::Remove, |c, m| {
                proto::build::dirop_args(c, m, &root, "rm-me")
            })
        };
        let (r1, _) = s.service(t(1), &rm());
        let (r2, c2) = s.service(t(2), &rm());
        assert!(c2.dup_hit);
        assert_eq!(r1.to_vec_for_test(), r2.to_vec_for_test());
        assert_eq!(s.stats().count(NfsProc::Remove), 1, "executed once");
        assert_eq!(
            results::get_stat(&mut reply_body(&r2)).unwrap(),
            NfsStatus::Ok,
            "the replayed reply is the success, not NOENT"
        );

        let mv = || {
            call(61, NfsProc::Rename, |c, m| {
                proto::build::rename_args(c, m, &root, "mv-me", &root, "mv-done")
            })
        };
        let (m1, _) = s.service(t(3), &mv());
        let (m2, c4) = s.service(t(4), &mv());
        assert!(c4.dup_hit);
        assert_eq!(m1.to_vec_for_test(), m2.to_vec_for_test());
        assert_eq!(s.stats().count(NfsProc::Rename), 1, "executed once");
        assert_eq!(
            results::get_stat(&mut reply_body(&m2)).unwrap(),
            NfsStatus::Ok
        );
    }

    #[test]
    fn dup_cache_refresh_does_not_grow_ring_and_fifo_evicts() {
        let mut dc = DupCache::new(2);
        let reply = MbufChain::new();
        dc.put(0, 1, NfsProc::Create, reply.clone());
        dc.put(0, 1, NfsProc::Create, reply.clone()); // refresh, not re-insert
        dc.put(0, 2, NfsProc::Create, reply.clone());
        assert!(dc.get(0, 1, NfsProc::Create).is_some());
        assert!(dc.get(0, 2, NfsProc::Create).is_some());
        // A third distinct key evicts the oldest (xid 1), proving the
        // refresh above did not occupy a second ring slot.
        dc.put(0, 3, NfsProc::Create, reply);
        assert!(dc.get(0, 1, NfsProc::Create).is_none(), "oldest evicted");
        assert!(dc.get(0, 2, NfsProc::Create).is_some());
        assert!(dc.get(0, 3, NfsProc::Create).is_some());
    }

    #[test]
    fn dup_cache_never_cross_hits_between_clients() {
        let mut cfg = ServerConfig::reno();
        cfg.dup_cache = true;
        let mut s = NfsServer::new(cfg, t(0));
        s.set_client_count(2);
        let root = s.root_handle();
        // Client 0 and client 1 independently pick xid 50 for a CREATE of
        // *different* names: the second must execute, not be answered with
        // the first client's cached reply.
        let creq = |name: &'static str| {
            call(50, NfsProc::Create, move |c, m| {
                proto::build::create_args(c, m, &root, name, &proto::Sattr::default())
            })
        };
        let (_, c1) = s.service_from(t(1), &creq("from-c0"), 0);
        assert!(!c1.dup_hit);
        let (r2, c2) = s.service_from(t(2), &creq("from-c1"), 1);
        assert!(!c2.dup_hit, "same xid, different client: not a duplicate");
        let (_, attr) = results::get_diropres(&mut reply_body(&r2))
            .unwrap()
            .unwrap();
        assert_eq!(attr.ftype, renofs_vfs::FileType::Regular);
        assert_eq!(s.stats().count(NfsProc::Create), 2, "both executed");
        // And each client's own retransmission still replays from cache.
        let (_, c3) = s.service_from(t(3), &creq("from-c0"), 0);
        let (_, c4) = s.service_from(t(4), &creq("from-c1"), 1);
        assert!(c3.dup_hit);
        assert!(c4.dup_hit);
        assert_eq!(s.stats().dup_hits, 2);
    }

    #[test]
    fn dup_cache_capacity_scales_with_clients_and_survives_reboot() {
        let mut cfg = ServerConfig::reno();
        cfg.dup_cache = true;
        let mut s = NfsServer::new(cfg, t(0));
        s.set_client_count(4);
        assert_eq!(s.dup_cache_cap, 4 * super::DUP_CACHE_PER_CLIENT);
        s.reboot();
        assert_eq!(
            s.dup_cache_cap,
            4 * super::DUP_CACHE_PER_CLIENT,
            "table size is compiled in, not volatile"
        );
        assert!(s.dupcache.is_some());
    }

    #[test]
    fn without_dup_cache_nonidempotent_repeats_fail() {
        let mut s = server();
        let root = s.root_handle();
        let root_ino = s.fs().root();
        s.fs_mut().create(root_ino, "victim", 0o644, t(0)).unwrap();
        let mk = || {
            call(88, NfsProc::Remove, |c, m| {
                proto::build::dirop_args(c, m, &root, "victim")
            })
        };
        let (r1, _) = s.service(t(1), &mk());
        assert_eq!(
            results::get_stat(&mut reply_body(&r1)).unwrap(),
            NfsStatus::Ok
        );
        // The retransmitted remove fails with NOENT — the paper's
        // "faulty behaviour ... due to the repetition of non-idempotent
        // RPCs".
        let (r2, _) = s.service(t(2), &mk());
        assert_eq!(
            results::get_stat(&mut reply_body(&r2)).unwrap(),
            NfsStatus::NoEnt
        );
    }

    #[test]
    fn readdir_via_rpc() {
        let mut s = server();
        let root_ino = s.fs().root();
        for i in 0..5 {
            s.fs_mut()
                .create(root_ino, &format!("e{i}"), 0o644, t(0))
                .unwrap();
        }
        let root = s.root_handle();
        let req = call(40, NfsProc::Readdir, |c, m| {
            proto::build::readdir_args(c, m, &root, 0, 8192)
        });
        let (reply, _) = s.service(t(1), &req);
        let (entries, eof) = results::get_readdirres(&mut reply_body(&reply))
            .unwrap()
            .unwrap();
        assert_eq!(entries.len(), 5);
        assert!(eof);
    }

    #[test]
    fn garbled_request_rejected() {
        let mut s = server();
        let mut meter = CopyMeter::new();
        let junk = MbufChain::from_slice(&[0u8; 8], &mut meter);
        let (reply, cost) = s.service(t(1), &junk);
        assert!(reply.is_empty(), "unparseable header: no reply");
        assert!(cost.proc.is_none());
        assert_eq!(s.stats().garbage, 1);
    }

    #[test]
    fn loan_pages_avoids_read_copy() {
        let mut cfg = ServerConfig::reno();
        cfg.loan_read_pages = true;
        let mut s = NfsServer::new(cfg, t(0));
        let root_ino = s.fs().root();
        let ino = s.fs_mut().create(root_ino, "f", 0o644, t(0)).unwrap();
        s.fs_mut().write(ino, 0, &[1u8; 8192], t(0)).unwrap();
        let fh = s.handle_for(ino).unwrap();
        let req = call(50, NfsProc::Read, |c, m| {
            proto::build::read_args(c, m, &fh, 0, 8192)
        });
        let (_, cost) = s.service(t(1), &req);
        assert_eq!(cost.bytes_copied, 0, "page loan: no cache->mbuf copy");
    }

    /// Builds a complete NQNFS-version call message.
    fn nq_call(
        xid: u32,
        proc: NfsProc,
        args: impl FnOnce(&mut MbufChain, &mut CopyMeter),
    ) -> MbufChain {
        let mut meter = CopyMeter::new();
        let mut chain = MbufChain::new();
        CallHeader {
            xid,
            prog: NFS_PROGRAM,
            vers: NQNFS_VERSION,
            proc: proc.to_wire(),
            auth: AuthUnix::root("testclient"),
        }
        .encode(&mut chain, &mut meter);
        args(&mut chain, &mut meter);
        chain
    }

    /// Decodes an NQNFS reply: returns the recall trailer and a decoder
    /// positioned at the result body.
    fn nq_reply_body(reply: &MbufChain) -> (u32, XdrDecoder<'_>) {
        let mut dec = XdrDecoder::new(reply);
        let h = ReplyHeader::decode(&mut dec).unwrap();
        assert_eq!(h.stat, AcceptStat::Success);
        let recall = dec.get_u32().unwrap();
        (recall, dec)
    }

    fn lease_server() -> NfsServer {
        let mut cfg = ServerConfig::reno();
        cfg.leases = true;
        NfsServer::new(cfg, t(0))
    }

    #[test]
    fn nqnfs_version_only_served_when_leases_enabled() {
        // A lease-less server refuses the NQNFS version outright.
        let mut s = server();
        let req = nq_call(1, NfsProc::Null, |_, _| {});
        let (reply, _) = s.service(t(1), &req);
        let mut dec = XdrDecoder::new(&reply);
        assert_eq!(
            ReplyHeader::decode(&mut dec).unwrap().stat,
            AcceptStat::ProgUnavail
        );
        // And a lease server refuses GETLEASE over the classic version
        // (classic mounts must see a protocol-identical server).
        let mut s = lease_server();
        let root = s.root_handle();
        let req = call(2, NfsProc::Getlease, |c, m| {
            proto::build::getlease_args(c, m, &root, proto::LEASE_MODE_READ)
        });
        let (reply, _) = s.service(t(1), &req);
        let mut dec = XdrDecoder::new(&reply);
        assert_eq!(
            ReplyHeader::decode(&mut dec).unwrap().stat,
            AcceptStat::ProcUnavail
        );
    }

    #[test]
    fn write_lease_conflict_recalls_holder_and_defers_requester() {
        let mut s = lease_server();
        let root_ino = s.fs().root();
        let ino = s.fs_mut().create(root_ino, "f", 0o644, t(0)).unwrap();
        let fh = s.handle_for(ino).unwrap();
        // Client 0 takes a write lease.
        let req = nq_call(1, NfsProc::Getlease, |c, m| {
            proto::build::getlease_args(c, m, &fh, LEASE_MODE_WRITE)
        });
        let (reply, _) = s.service_from(t(1), &req, 0);
        let (recall, mut dec) = nq_reply_body(&reply);
        assert_eq!(recall, 0);
        let (term, attr) = results::get_leaseres(&mut dec).unwrap().unwrap();
        assert_eq!(term, proto::LEASE_TERM_MS);
        assert!(attr.is_some(), "the grant doubles as a GETATTR");
        assert_eq!(s.stats().leases_issued, 1);
        // Client 1 wants to read: recalled + TryLater.
        let req = nq_call(2, NfsProc::Getlease, |c, m| {
            proto::build::getlease_args(c, m, &fh, proto::LEASE_MODE_READ)
        });
        let (reply, _) = s.service_from(t(1), &req, 1);
        let (_, mut dec) = nq_reply_body(&reply);
        assert_eq!(
            results::get_leaseres(&mut dec).unwrap(),
            Err(NfsStatus::TryLater)
        );
        assert_eq!(s.stats().lease_recalls, 1);
        assert_eq!(s.stats().lease_vacate_waits, 1);
        // The recall rides the trailer of client 0's next reply.
        let req = nq_call(3, NfsProc::Getattr, |c, m| {
            proto::build::handle_args(c, m, &fh)
        });
        let (reply, _) = s.service_from(t(1), &req, 0);
        let (recall, _) = nq_reply_body(&reply);
        assert_eq!(recall, ino.0, "eviction callback piggybacked");
        // Client 0 vacates; client 1's retry is granted.
        let req = nq_call(4, NfsProc::Getlease, |c, m| {
            proto::build::getlease_args(c, m, &fh, LEASE_MODE_RELEASE)
        });
        let (_, _) = s.service_from(t(1), &req, 0);
        let req = nq_call(5, NfsProc::Getlease, |c, m| {
            proto::build::getlease_args(c, m, &fh, proto::LEASE_MODE_READ)
        });
        let (reply, _) = s.service_from(t(1), &req, 1);
        let (_, mut dec) = nq_reply_body(&reply);
        assert!(results::get_leaseres(&mut dec).unwrap().is_ok());
        assert_eq!(s.stats().leases_issued, 2);
    }

    #[test]
    fn normal_rpcs_renew_and_lapsed_leases_expire() {
        let mut s = lease_server();
        let root_ino = s.fs().root();
        let ino = s.fs_mut().create(root_ino, "f", 0o644, t(0)).unwrap();
        let fh = s.handle_for(ino).unwrap();
        let grant = |xid| {
            nq_call(xid, NfsProc::Getlease, |c, m| {
                proto::build::getlease_args(c, m, &fh, LEASE_MODE_WRITE)
            })
        };
        s.service_from(t(1), &grant(1), 0);
        // A WRITE from the holder inside the term renews it…
        let mut meter = CopyMeter::new();
        let data = MbufChain::from_slice(&[7u8; 512], &mut meter);
        let req = nq_call(2, NfsProc::Write, |c, m| {
            proto::build::write_args(c, m, &fh, 0, data)
        });
        s.service_from(t(3), &req, 0);
        assert_eq!(s.stats().leases_renewed, 1, "piggybacked renewal");
        // …so at t=5 (within the renewed term) another client still
        // conflicts, but at t=7 the lease has lapsed and access is free.
        let read_req = |xid| {
            nq_call(xid, NfsProc::Read, |c, m| {
                proto::build::read_args(c, m, &fh, 0, 512)
            })
        };
        let (reply, _) = s.service_from(t(5), &read_req(3), 1);
        let (_, mut dec) = nq_reply_body(&reply);
        assert_eq!(
            results::get_readres(&mut dec).unwrap().unwrap_err(),
            NfsStatus::TryLater
        );
        let (reply, _) = s.service_from(t(7), &read_req(4), 1);
        let (_, mut dec) = nq_reply_body(&reply);
        assert!(results::get_readres(&mut dec).unwrap().is_ok());
        assert_eq!(s.stats().lease_expiries, 1);
    }

    #[test]
    fn reboot_grace_defers_reads_until_the_term_is_waited_out() {
        let mut s = lease_server();
        let root_ino = s.fs().root();
        let ino = s.fs_mut().create(root_ino, "f", 0o644, t(0)).unwrap();
        s.fs_mut().write(ino, 0, &[1u8; 512], t(0)).unwrap();
        s.reboot();
        let fh = s.handle_for(ino).unwrap();
        // First contact at t=10 arms the grace clock: reads and grants
        // defer until t=13 (one full lease term), writes proceed so
        // crashed holders can land their write-behind data.
        let read_req = |xid| {
            nq_call(xid, NfsProc::Read, |c, m| {
                proto::build::read_args(c, m, &fh, 0, 512)
            })
        };
        let (reply, _) = s.service_from(t(10), &read_req(1), 1);
        let (_, mut dec) = nq_reply_body(&reply);
        assert_eq!(
            results::get_readres(&mut dec).unwrap().unwrap_err(),
            NfsStatus::TryLater
        );
        let grant = nq_call(2, NfsProc::Getlease, |c, m| {
            proto::build::getlease_args(c, m, &fh, LEASE_MODE_WRITE)
        });
        let (reply, _) = s.service_from(t(11), &grant, 1);
        let (_, mut dec) = nq_reply_body(&reply);
        assert_eq!(
            results::get_leaseres(&mut dec).unwrap(),
            Err(NfsStatus::TryLater)
        );
        let mut meter = CopyMeter::new();
        let data = MbufChain::from_slice(&[2u8; 512], &mut meter);
        let wreq = nq_call(3, NfsProc::Write, |c, m| {
            proto::build::write_args(c, m, &fh, 0, data)
        });
        let (reply, _) = s.service_from(t(11), &wreq, 0);
        let (_, mut dec) = nq_reply_body(&reply);
        assert!(
            results::get_attrstat(&mut dec).unwrap().is_ok(),
            "recovery writes are admitted during the grace"
        );
        let (reply, _) = s.service_from(t(13), &read_req(4), 1);
        let (_, mut dec) = nq_reply_body(&reply);
        assert!(results::get_readres(&mut dec).unwrap().is_ok());
        // The mutation hook skips the wait entirely.
        let mut cfg = ServerConfig::reno();
        cfg.leases = true;
        cfg.lease_no_reboot_grace = true;
        let mut s = NfsServer::new(cfg, t(0));
        let root_ino = s.fs().root();
        let ino = s.fs_mut().create(root_ino, "f", 0o644, t(0)).unwrap();
        s.fs_mut().write(ino, 0, &[1u8; 512], t(0)).unwrap();
        s.reboot();
        let fh = s.handle_for(ino).unwrap();
        let req = nq_call(1, NfsProc::Read, |c, m| {
            proto::build::read_args(c, m, &fh, 0, 512)
        });
        let (reply, _) = s.service_from(t(10), &req, 1);
        let (_, mut dec) = nq_reply_body(&reply);
        assert!(
            results::get_readres(&mut dec).unwrap().is_ok(),
            "no-grace mutant serves state immediately"
        );
    }

    #[test]
    fn symlink_and_readlink() {
        let mut s = server();
        let root = s.root_handle();
        let req = call(60, NfsProc::Symlink, |c, m| {
            proto::build::symlink_args(c, m, &root, "ln", "/target/path")
        });
        let (reply, _) = s.service(t(1), &req);
        assert_eq!(
            results::get_stat(&mut reply_body(&reply)).unwrap(),
            NfsStatus::Ok
        );
        let lk = call(61, NfsProc::Lookup, |c, m| {
            proto::build::dirop_args(c, m, &root, "ln")
        });
        let (reply, _) = s.service(t(2), &lk);
        let (fh, attr) = results::get_diropres(&mut reply_body(&reply))
            .unwrap()
            .unwrap();
        assert_eq!(attr.ftype, renofs_vfs::FileType::Symlink);
        let rl = call(62, NfsProc::Readlink, |c, m| {
            proto::build::handle_args(c, m, &fh)
        });
        let (reply, _) = s.service(t(3), &rl);
        assert_eq!(
            results::get_readlinkres(&mut reply_body(&reply))
                .unwrap()
                .unwrap(),
            "/target/path"
        );
    }
}
