//! CPU cost constants, calibrated to the paper's 0.9 MIPS MicroVAXII.
//!
//! All values are in MicroVAXII time; [`renofs_sim::Cpu`] scales them by
//! the host profile's speed factor. The calibration targets the paper's
//! observed relationships rather than absolute 1991 microseconds:
//!
//! - a loaded server spends **over a third** of its cycles in low-level
//!   network interface handling (Section 3) under a read-heavy mix;
//! - the Section 3 interface changes (PTE-swap mapping + no transmit
//!   interrupt) recover **~12 %** of server CPU;
//! - TCP costs about **7 ms/RPC more** than UDP for the read mix and
//!   ~1 ms more for lookups, roughly **+20 %** overall (Graph 6);
//! - small-RPC service is a few milliseconds, so a MicroVAXII server
//!   saturates in the low hundreds of lookups/sec and tens of 8 KB
//!   reads/sec.

use renofs_sim::SimDuration;

/// Copying memory to memory: ~2 MB/s on a MicroVAXII.
pub const COPY_PER_BYTE: SimDuration = SimDuration::from_nanos(500);

/// The Internet checksum: slightly costlier per byte than a copy on a
/// VAX (no hardware assist).
pub const CKSUM_PER_BYTE: SimDuration = SimDuration::from_nanos(600);

/// Fixed IP+UDP protocol processing per datagram, each direction.
pub const UDP_PROTO_FIXED: SimDuration = SimDuration::from_micros(350);

/// Fixed IP+TCP protocol processing per *segment*, each direction. TCP
/// does sequence/window/timer bookkeeping per segment, which is where
/// its extra CPU overhead comes from.
pub const TCP_PROTO_FIXED: SimDuration = SimDuration::from_micros(700);

/// Processing a pure ACK segment (the header-prediction fast path).
pub const TCP_ACK_FIXED: SimDuration = SimDuration::from_micros(250);

/// Socket-layer work per RPC (sosend/soreceive bookkeeping).
pub const SOCKET_FIXED: SimDuration = SimDuration::from_micros(400);

/// RPC header encode or decode (the nfsm_build/nfsm_disect inline XDR).
pub const RPC_CODEC_FIXED: SimDuration = SimDuration::from_micros(300);

/// Fixed server-side NFS request dispatch and service overhead.
pub const NFS_SERVICE_FIXED: SimDuration = SimDuration::from_micros(900);

/// Fixed client-side cost per RPC issued (request setup, sleep/wakeup).
pub const CLIENT_RPC_FIXED: SimDuration = SimDuration::from_micros(700);

/// One buffer-cache or directory search step (hash probe / list walk).
pub const CACHE_SEARCH_STEP: SimDuration = SimDuration::from_micros(20);

/// One directory entry comparison during an uncached lookup scan.
pub const DIR_SCAN_ENTRY: SimDuration = SimDuration::from_micros(25);

/// Fixed cost of a syscall entered by a benchmark process.
pub const SYSCALL_FIXED: SimDuration = SimDuration::from_micros(250);

/// Per-byte cost of moving data between user space and the cache.
pub const USER_COPY_PER_BYTE: SimDuration = SimDuration::from_nanos(500);

/// Disk interrupt service + block I/O setup, per disk operation.
pub const DISK_OP_CPU: SimDuration = SimDuration::from_micros(300);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_k_copy_is_milliseconds() {
        // The Section 3 story requires bulk copies to dominate: an 8 KB
        // copy must sit in the low-millisecond range on a MicroVAXII.
        let copy = COPY_PER_BYTE * 8192;
        assert!(copy.as_millis() >= 2 && copy.as_millis() <= 10, "{copy:?}");
    }

    #[test]
    fn tcp_per_segment_overhead_exceeds_udp() {
        assert!(TCP_PROTO_FIXED > UDP_PROTO_FIXED);
        assert!(
            TCP_ACK_FIXED < TCP_PROTO_FIXED,
            "header prediction fast path"
        );
    }

    #[test]
    fn search_step_far_cheaper_than_rpc() {
        assert!(CACHE_SEARCH_STEP.as_nanos() * 20 < NFS_SERVICE_FIXED.as_nanos());
    }
}
