//! The boundary between the NFS client and the simulated machine.
//!
//! [`ClientFs`](crate::client::ClientFs) is written in natural blocking
//! style against this trait. In the full simulation
//! ([`crate::world::World`]) each call suspends the workload thread while
//! the event loop advances virtual time; in unit tests the
//! [`Loopback`] implementation services RPCs synchronously against an
//! in-process [`NfsServer`], which makes client caching behaviour — the
//! RPC counts of Table 3 — testable without a network.

use renofs_mbuf::MbufChain;
use renofs_sim::{SimDuration, SimTime};

use crate::proto::NfsProc;
use crate::server::NfsServer;

/// A handle to an asynchronous RPC in flight (a biod's work).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Ticket(pub u64);

/// Why an RPC failed at the transport layer.
///
/// On a hard mount the transport retries forever, so syscalls never see
/// this; a soft mount surfaces `TimedOut` once the `retrans` budget is
/// exhausted (the `ETIMEDOUT` a BSD soft mount returns).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RpcError {
    /// The soft mount's retransmission budget ran out with no reply.
    TimedOut,
}

/// Result of a (possibly soft-mounted) RPC.
pub type RpcResult = Result<MbufChain, RpcError>;

/// Primitives the simulated machine provides to the client.
pub trait Syscalls {
    /// Current virtual time.
    fn now(&mut self) -> SimTime;

    /// Consumes CPU on the client machine (blocks the caller while other
    /// simulated activity proceeds).
    fn charge_cpu(&mut self, d: SimDuration);

    /// Sleeps for `d` of virtual time without consuming CPU (load
    /// generator pacing).
    fn sleep(&mut self, d: SimDuration);

    /// Issues an RPC and blocks until the reply arrives (retransmission
    /// handled by the transport underneath). The message already carries
    /// its RPC header; `proc` classifies it for RTO estimation. On a
    /// soft mount the call can fail with [`RpcError::TimedOut`].
    fn rpc(&mut self, proc: NfsProc, msg: MbufChain) -> RpcResult;

    /// [`rpc`](Self::rpc) addressed to one server of a sharded fleet.
    /// Single-server implementations only know server 0; the full
    /// simulation routes each index to its own machine, transport and
    /// XID stream.
    fn rpc_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> RpcResult {
        assert_eq!(server, 0, "this Syscalls implementation is single-server");
        self.rpc(proc, msg)
    }

    /// Starts an RPC on a biod slot, blocking only if every slot is
    /// busy. The reply is retrievable via the ticket.
    fn rpc_async(&mut self, proc: NfsProc, msg: MbufChain) -> Ticket;

    /// [`rpc_async`](Self::rpc_async) addressed to one server of a
    /// sharded fleet.
    fn rpc_async_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> Ticket {
        assert_eq!(server, 0, "this Syscalls implementation is single-server");
        self.rpc_async(proc, msg)
    }

    /// Blocks until the ticketed RPC completes and returns its reply
    /// (or the soft-mount timeout it died with).
    fn await_ticket(&mut self, t: Ticket) -> RpcResult;

    /// Returns the reply if the ticketed RPC already completed.
    fn poll_ticket(&mut self, t: Ticket) -> Option<RpcResult>;

    /// Discards interest in a ticket (reply dropped on completion).
    fn forget_ticket(&mut self, t: Ticket);

    /// Blocks until every outstanding asynchronous RPC completes.
    fn wait_all_async(&mut self);

    /// Performs local-disk I/O (the Create-Delete "Local" baseline).
    fn local_disk(&mut self, bytes: usize, write: bool, sequential: bool);
}

impl<T: Syscalls + ?Sized> Syscalls for &mut T {
    fn now(&mut self) -> SimTime {
        (**self).now()
    }
    fn charge_cpu(&mut self, d: SimDuration) {
        (**self).charge_cpu(d)
    }
    fn sleep(&mut self, d: SimDuration) {
        (**self).sleep(d)
    }
    fn rpc(&mut self, proc: NfsProc, msg: MbufChain) -> RpcResult {
        (**self).rpc(proc, msg)
    }
    fn rpc_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> RpcResult {
        (**self).rpc_to(server, proc, msg)
    }
    fn rpc_async(&mut self, proc: NfsProc, msg: MbufChain) -> Ticket {
        (**self).rpc_async(proc, msg)
    }
    fn rpc_async_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> Ticket {
        (**self).rpc_async_to(server, proc, msg)
    }
    fn await_ticket(&mut self, t: Ticket) -> RpcResult {
        (**self).await_ticket(t)
    }
    fn poll_ticket(&mut self, t: Ticket) -> Option<RpcResult> {
        (**self).poll_ticket(t)
    }
    fn forget_ticket(&mut self, t: Ticket) {
        (**self).forget_ticket(t)
    }
    fn wait_all_async(&mut self) {
        (**self).wait_all_async()
    }
    fn local_disk(&mut self, bytes: usize, write: bool, sequential: bool) {
        (**self).local_disk(bytes, write, sequential)
    }
}

/// Pins a borrowed system to one server of a sharded fleet: plain
/// [`Syscalls::rpc`]/[`Syscalls::rpc_async`] calls are rewritten to the
/// pinned index, while explicit `*_to` calls pass through untouched.
///
/// This is the borrow-based sibling of [`crate::router::ServerPort`]:
/// workload threads that receive the world's system by `&mut` (and so
/// cannot share it through an `Rc`) wrap it in a `PinTo` to aim a
/// single-server load generator at one shard.
pub struct PinTo<'a, S: Syscalls> {
    sys: &'a mut S,
    server: usize,
}

impl<'a, S: Syscalls> PinTo<'a, S> {
    /// Wraps `sys`, routing implicit RPCs to `server`.
    pub fn new(sys: &'a mut S, server: usize) -> Self {
        PinTo { sys, server }
    }
}

impl<S: Syscalls> Syscalls for PinTo<'_, S> {
    fn now(&mut self) -> SimTime {
        self.sys.now()
    }
    fn charge_cpu(&mut self, d: SimDuration) {
        self.sys.charge_cpu(d)
    }
    fn sleep(&mut self, d: SimDuration) {
        self.sys.sleep(d)
    }
    fn rpc(&mut self, proc: NfsProc, msg: MbufChain) -> RpcResult {
        self.sys.rpc_to(self.server, proc, msg)
    }
    fn rpc_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> RpcResult {
        self.sys.rpc_to(server, proc, msg)
    }
    fn rpc_async(&mut self, proc: NfsProc, msg: MbufChain) -> Ticket {
        self.sys.rpc_async_to(self.server, proc, msg)
    }
    fn rpc_async_to(&mut self, server: usize, proc: NfsProc, msg: MbufChain) -> Ticket {
        self.sys.rpc_async_to(server, proc, msg)
    }
    fn await_ticket(&mut self, t: Ticket) -> RpcResult {
        self.sys.await_ticket(t)
    }
    fn poll_ticket(&mut self, t: Ticket) -> Option<RpcResult> {
        self.sys.poll_ticket(t)
    }
    fn forget_ticket(&mut self, t: Ticket) {
        self.sys.forget_ticket(t)
    }
    fn wait_all_async(&mut self) {
        self.sys.wait_all_async()
    }
    fn local_disk(&mut self, bytes: usize, write: bool, sequential: bool) {
        self.sys.local_disk(bytes, write, sequential)
    }
}

/// Synchronous in-process implementation for unit tests: RPCs are served
/// immediately by an embedded server, and time advances by simple fixed
/// charges.
pub struct Loopback {
    /// The embedded server.
    pub server: NfsServer,
    now: SimTime,
    rpc_delay: SimDuration,
    tickets: std::collections::HashMap<u64, RpcResult>,
    next_ticket: u64,
    /// RPCs issued, by procedure wire number (independent check against
    /// the client's own counters).
    pub rpc_log: Vec<NfsProc>,
}

impl Loopback {
    /// Wraps a server with a fixed per-RPC round-trip delay.
    pub fn new(server: NfsServer) -> Self {
        Loopback {
            server,
            now: SimTime::from_secs(1),
            rpc_delay: SimDuration::from_millis(20),
            tickets: std::collections::HashMap::new(),
            next_ticket: 1,
            rpc_log: Vec::new(),
        }
    }

    /// Advances the loopback clock (e.g. to expire attribute caches).
    pub fn advance(&mut self, d: SimDuration) {
        self.now += d;
    }

    /// Count of logged RPCs of one procedure.
    pub fn count(&self, proc: NfsProc) -> usize {
        self.rpc_log.iter().filter(|p| **p == proc).count()
    }
}

impl Syscalls for Loopback {
    fn now(&mut self) -> SimTime {
        self.now
    }

    fn charge_cpu(&mut self, d: SimDuration) {
        self.now += d;
    }

    fn sleep(&mut self, d: SimDuration) {
        self.now += d;
    }

    fn rpc(&mut self, proc: NfsProc, msg: MbufChain) -> RpcResult {
        self.rpc_log.push(proc);
        self.now += self.rpc_delay;
        let (reply, _cost) = self.server.service(self.now, &msg);
        Ok(reply)
    }

    fn rpc_async(&mut self, proc: NfsProc, msg: MbufChain) -> Ticket {
        let reply = self.rpc(proc, msg);
        let id = self.next_ticket;
        self.next_ticket += 1;
        self.tickets.insert(id, reply);
        Ticket(id)
    }

    fn await_ticket(&mut self, t: Ticket) -> RpcResult {
        self.tickets.remove(&t.0).expect("ticket exists")
    }

    fn poll_ticket(&mut self, t: Ticket) -> Option<RpcResult> {
        self.tickets.remove(&t.0)
    }

    fn forget_ticket(&mut self, t: Ticket) {
        self.tickets.remove(&t.0);
    }

    fn wait_all_async(&mut self) {}

    fn local_disk(&mut self, bytes: usize, write: bool, sequential: bool) {
        let _ = (write, sequential);
        self.now += SimDuration::from_micros(20) * bytes as u64 / 1000;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::ServerConfig;

    #[test]
    fn loopback_services_rpcs() {
        use renofs_mbuf::CopyMeter;
        use renofs_sunrpc::{AuthUnix, CallHeader, NFS_PROGRAM, NFS_VERSION};

        let server = NfsServer::new(ServerConfig::reno(), SimTime::ZERO);
        let mut lb = Loopback::new(server);
        let t0 = lb.now();
        let mut meter = CopyMeter::new();
        let mut msg = MbufChain::new();
        CallHeader {
            xid: 1,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc: NfsProc::Null.to_wire(),
            auth: AuthUnix::root("t"),
        }
        .encode(&mut msg, &mut meter);
        let reply = lb.rpc(NfsProc::Null, msg).unwrap();
        assert!(!reply.is_empty());
        assert!(lb.now() > t0, "rpc advances time");
        assert_eq!(lb.count(NfsProc::Null), 1);
    }

    #[test]
    fn tickets_round_trip() {
        use renofs_mbuf::CopyMeter;
        use renofs_sunrpc::{AuthUnix, CallHeader, NFS_PROGRAM, NFS_VERSION};

        let server = NfsServer::new(ServerConfig::reno(), SimTime::ZERO);
        let mut lb = Loopback::new(server);
        let mut meter = CopyMeter::new();
        let mut msg = MbufChain::new();
        CallHeader {
            xid: 2,
            prog: NFS_PROGRAM,
            vers: NFS_VERSION,
            proc: NfsProc::Null.to_wire(),
            auth: AuthUnix::root("t"),
        }
        .encode(&mut msg, &mut meter);
        let t = lb.rpc_async(NfsProc::Null, msg);
        let reply = lb.await_ticket(t).unwrap();
        assert!(!reply.is_empty());
        assert!(lb.poll_ticket(t).is_none(), "consumed");
    }
}
