//! Deterministic generator: splitmix64 seeded from the test name and
//! case index, so every run of the suite sees the same cases.

/// The per-case random source handed to strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// An rng for one `(test, case)` pair, stable across runs.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut state = h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Warm the state so nearby seeds diverge.
        splitmix64(&mut state);
        TestRng { state }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for test
        // generation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::for_case("t", 0);
        for bound in [1u64, 2, 7, 1000] {
            for _ in 0..200 {
                assert!(r.below(bound) < bound);
            }
        }
    }

    #[test]
    fn distinct_cases_diverge() {
        let a = TestRng::for_case("t", 0).next_u64();
        let b = TestRng::for_case("t", 1).next_u64();
        let c = TestRng::for_case("u", 0).next_u64();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
