//! The `prop::` namespace (`prop::sample::Index` etc.).

/// Sampling helpers.
pub mod sample {
    use crate::rng::TestRng;
    use crate::strategy::Arbitrary;

    /// An index into a collection whose size is unknown at generation
    /// time; resolve it with [`Index::index`].
    #[derive(Clone, Copy, Debug)]
    pub struct Index(u64);

    impl Index {
        /// Maps this sample onto `[0, len)`.
        ///
        /// # Panics
        ///
        /// Panics if `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on an empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}
