//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::rng::TestRng;
use crate::strategy::Strategy;

/// Strategy for `Vec`s whose length is drawn from `len_range` and whose
/// elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    len_range: Range<usize>,
}

/// `vec(strategy, lo..hi)`: vectors of `lo <= len < hi` elements.
pub fn vec<S: Strategy>(element: S, len_range: Range<usize>) -> VecStrategy<S> {
    assert!(
        len_range.start < len_range.end,
        "empty length range for collection::vec"
    );
    VecStrategy { element, len_range }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.len_range.end - self.len_range.start) as u64;
        let len = self.len_range.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn lengths_cover_range() {
        let strat = vec(any::<u8>(), 0..4);
        let mut seen = [false; 4];
        for case in 0..200 {
            let v = strat.generate(&mut TestRng::for_case("lens", case));
            assert!(v.len() < 4);
            seen[v.len()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all lengths 0..4 reachable");
    }
}
