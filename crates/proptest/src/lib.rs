//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment for this workspace has no access to a crates.io
//! registry, so the real `proptest` cannot be fetched. This shim
//! implements exactly the API surface the workspace's property tests
//! use — `proptest!`, `prop_assert*!`, `prop_oneof!`, `any`, `Just`,
//! range/tuple/collection strategies, a tiny `[class]{lo,hi}` string
//! strategy and `sample::Index` — on top of a deterministic splitmix64
//! generator.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **No shrinking.** A failing case reports its case index and seed;
//!   rerunning is deterministic, so the case is reproducible, just not
//!   minimized.
//! - **No `proptest-regressions` replay.** The checked-in regression
//!   files are ignored.
//! - The default case count is 64 (override per block with
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` or globally
//!   with the `PROPTEST_CASES` environment variable).

pub mod collection;
pub mod prop;
pub mod rng;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything the workspace's tests import.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each `#[test] fn name(bindings in strategies) { body }` item as a
/// property test: `cases` deterministic random cases per test.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$attr:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            for case in 0..cases {
                let mut __rng =
                    $crate::rng::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // The closure exists so `prop_assert*!` can early-return
                // a failure without panicking mid-case.
                #[allow(clippy::redundant_closure_call)]
                let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "property test {} failed at case {case}/{cases}: {e}\n\
                         (cases are deterministic; rerun reproduces this failure)",
                        stringify!($name),
                    );
                }
            }
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}

/// `assert!` that fails the current property-test case instead of
/// panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), left, right
            )));
        }
    }};
}

/// `assert_ne!` flavour of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Picks one of several strategies, optionally weighted
/// (`prop_oneof![3 => a, 1 => b]`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Tag {
        A(u8),
        B,
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, f in 0.0f64..=1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..=255, 2..9)) {
            prop_assert!(v.len() >= 2 && v.len() < 9);
        }

        #[test]
        fn oneof_and_map(t in prop_oneof![
            3 => any::<u8>().prop_map(Tag::A),
            1 => Just(Tag::B),
        ]) {
            match t {
                Tag::A(_) | Tag::B => {}
            }
        }

        #[test]
        fn string_class_pattern(s in "[a-c]{2,5}") {
            prop_assert!(s.len() >= 2 && s.len() <= 5);
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        #[test]
        fn sample_index_in_bounds(i in any::<prop::sample::Index>()) {
            let idx = i.index(7);
            prop_assert!(idx < 7);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec(crate::strategy::any::<u32>(), 0..50);
        let a: Vec<Vec<u32>> = (0..10)
            .map(|c| strat.generate(&mut crate::rng::TestRng::for_case("det", c)))
            .collect();
        let b: Vec<Vec<u32>> = (0..10)
            .map(|c| strat.generate(&mut crate::rng::TestRng::for_case("det", c)))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "property test")]
    fn failures_panic_with_case_info() {
        // No #[test] attribute on the inner item: it is invoked by hand.
        proptest! {
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {x}");
            }
        }
        always_fails();
    }
}
