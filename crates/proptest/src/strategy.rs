//! The `Strategy` trait and the combinators the workspace uses.

use std::ops::{Range, RangeInclusive};

use crate::rng::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the rng state.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Produces one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(pub(crate) Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice between boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must sum to a nonzero total.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights accounted for")
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for an [`Arbitrary`] type.
pub struct Any<T>(std::marker::PhantomData<T>);

/// `any::<T>()`: any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Uniform over [lo, hi]; hi itself is reachable via the final
        // rounding, which is all the workspace's fraction-style uses need.
        let (lo, hi) = (*self.start(), *self.end());
        lo + rng.unit_f64() * (hi - lo)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident)+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A B);
tuple_strategy!(A B C);
tuple_strategy!(A B C D);
tuple_strategy!(A B C D E);
tuple_strategy!(A B C D E F);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
