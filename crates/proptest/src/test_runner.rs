//! Test configuration and the failure type `prop_assert*!` produce.

use std::fmt;

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count after applying the `PROPTEST_CASES` environment
    /// override (which, matching the real crate's behavior of a global
    /// knob, wins over per-block settings).
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test case.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `message`.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}
