//! String generation from the tiny regex subset the workspace uses:
//! a single character class with an optional `{lo,hi}` repetition,
//! e.g. `"[a-zA-Z0-9_.]{0,64}"`.

use crate::rng::TestRng;

/// Generates a string matching `pattern`.
///
/// # Panics
///
/// Panics if the pattern falls outside the supported
/// `[class]{lo,hi}` subset.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let (class, rest) = parse_class(pattern);
    let (lo, hi) = parse_repetition(rest);
    assert!(
        !class.is_empty(),
        "string pattern {pattern:?}: empty character class"
    );
    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
    (0..len)
        .map(|_| class[rng.below(class.len() as u64) as usize])
        .collect()
}

/// Parses a leading `[...]` class, returning its characters and the
/// remainder of the pattern.
fn parse_class(pattern: &str) -> (Vec<char>, &str) {
    let rest = pattern
        .strip_prefix('[')
        .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}: expected `[class]`"));
    let close = rest
        .find(']')
        .unwrap_or_else(|| panic!("unsupported string pattern {pattern:?}: unterminated class"));
    let body: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if i + 2 < body.len() && body[i + 1] == '-' {
            let (a, b) = (body[i], body[i + 2]);
            assert!(a <= b, "descending range {a}-{b} in pattern {pattern:?}");
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(body[i]);
            i += 1;
        }
    }
    (chars, &rest[close + 1..])
}

/// Parses the trailing repetition: empty (exactly one), `{n}` or `{lo,hi}`.
fn parse_repetition(rest: &str) -> (usize, usize) {
    if rest.is_empty() {
        return (1, 1);
    }
    let body = rest
        .strip_prefix('{')
        .and_then(|r| r.strip_suffix('}'))
        .unwrap_or_else(|| panic!("unsupported repetition {rest:?}: expected `{{lo,hi}}`"));
    match body.split_once(',') {
        Some((lo, hi)) => {
            let lo: usize = lo.trim().parse().expect("repetition lower bound");
            let hi: usize = hi.trim().parse().expect("repetition upper bound");
            assert!(lo <= hi, "descending repetition {body:?}");
            (lo, hi)
        }
        None => {
            let n: usize = body.trim().parse().expect("repetition count");
            (n, n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_with_ranges_and_literals() {
        let mut rng = TestRng::for_case("class", 0);
        for _ in 0..100 {
            let s = generate_from_pattern("[a-zA-Z0-9_.]{0,64}", &mut rng);
            assert!(s.len() <= 64);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.'));
        }
    }

    #[test]
    fn bare_class_is_one_char() {
        let mut rng = TestRng::for_case("bare", 0);
        let s = generate_from_pattern("[xyz]", &mut rng);
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "unsupported string pattern")]
    fn unsupported_pattern_panics() {
        let mut rng = TestRng::for_case("bad", 0);
        let _ = generate_from_pattern("hello.*", &mut rng);
    }
}
