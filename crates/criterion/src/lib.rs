//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the real criterion
//! cannot be fetched. This shim implements the API surface
//! `benches/micro.rs` uses — groups, `bench_function`, `iter`,
//! `iter_batched`, throughput annotation — with plain wall-clock timing
//! and a fixed-format report on stdout. No statistics, no HTML reports,
//! no command-line filtering.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim treats all
/// variants identically.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration setup output.
    SmallInput,
    /// Large per-iteration setup output.
    LargeInput,
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The per-benchmark timing driver.
pub struct Bencher {
    samples: u64,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over enough iterations for a stable mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then timed batches.
        black_box(routine());
        let mut iters = 0u64;
        let start = Instant::now();
        while iters < self.samples || start.elapsed() < Duration::from_millis(200) {
            black_box(routine());
            iters += 1;
            if iters >= self.samples * 64 {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    /// Times `routine` against fresh `setup` output each iteration,
    /// excluding setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut iters = 0u64;
        let mut elapsed = Duration::ZERO;
        while iters < self.samples || elapsed < Duration::from_millis(200) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
            iters += 1;
            if iters >= self.samples * 64 {
                break;
            }
        }
        self.elapsed = elapsed;
        self.iters = iters;
    }
}

/// A named group of benchmarks sharing a throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate lines in the report.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Runs one benchmark and prints its mean iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut b = Bencher {
            samples: self.criterion.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters > 0 {
            b.elapsed.as_nanos() as f64 / b.iters as f64
        } else {
            0.0
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let mbps = n as f64 / mean_ns * 1e9 / (1024.0 * 1024.0);
                format!("  {mbps:10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let eps = n as f64 / mean_ns * 1e9;
                format!("  {eps:10.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id:<28} {:>12.0} ns/iter  ({} iters){rate}",
            self.name, mean_ns, b.iters
        );
    }

    /// Ends the group (report lines are emitted eagerly; this is a no-op
    /// kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level benchmark harness handle.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 50 }
    }
}

impl Criterion {
    /// Sets the minimum iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            criterion: self,
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut c = Criterion::default().sample_size(5);
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Bytes(64));
        let mut ran = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert!(ran >= 5);
    }
}
