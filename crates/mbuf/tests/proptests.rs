//! Property-based tests for mbuf chain algebra.

use proptest::prelude::*;
use renofs_mbuf::{CopyMeter, MbufChain};

fn chain_from(data: &[u8], chunk_sizes: &[usize]) -> MbufChain {
    // Build the chain with an arbitrary append pattern so segment
    // boundaries land in arbitrary places.
    let mut meter = CopyMeter::new();
    let mut c = MbufChain::new();
    let mut rest = data;
    let mut i = 0;
    while !rest.is_empty() {
        let n = chunk_sizes
            .get(i % chunk_sizes.len().max(1))
            .copied()
            .unwrap_or(rest.len())
            .clamp(1, rest.len());
        c.append_bytes(&rest[..n], &mut meter);
        rest = &rest[n..];
        i += 1;
    }
    c
}

proptest! {
    #[test]
    fn append_preserves_content(
        data in proptest::collection::vec(any::<u8>(), 0..6000),
        chunks in proptest::collection::vec(1usize..700, 1..8),
    ) {
        let c = chain_from(&data, &chunks);
        prop_assert_eq!(c.len(), data.len());
        prop_assert_eq!(c.to_vec_for_test(), data);
    }

    #[test]
    fn split_then_cat_is_identity(
        data in proptest::collection::vec(any::<u8>(), 1..5000),
        chunks in proptest::collection::vec(1usize..700, 1..8),
        at_frac in 0.0f64..=1.0,
    ) {
        let mut meter = CopyMeter::new();
        let mut c = chain_from(&data, &chunks);
        let at = ((data.len() as f64) * at_frac) as usize;
        let tail = c.split_off(at, &mut meter);
        prop_assert_eq!(c.len(), at);
        prop_assert_eq!(tail.len(), data.len() - at);
        c.append_chain(tail);
        prop_assert_eq!(c.to_vec_for_test(), data);
    }

    #[test]
    fn share_range_matches_slice(
        data in proptest::collection::vec(any::<u8>(), 1..5000),
        chunks in proptest::collection::vec(1usize..700, 1..8),
        lo_frac in 0.0f64..=1.0,
        len_frac in 0.0f64..=1.0,
    ) {
        let mut meter = CopyMeter::new();
        let c = chain_from(&data, &chunks);
        let lo = ((data.len() as f64) * lo_frac) as usize;
        let len = (((data.len() - lo) as f64) * len_frac) as usize;
        let shared = c.share_range(lo, len, &mut meter);
        prop_assert_eq!(shared.to_vec_for_test(), &data[lo..lo + len]);
        // Sharing must not disturb the source.
        prop_assert_eq!(c.to_vec_for_test(), data);
    }

    #[test]
    fn trim_matches_slice(
        data in proptest::collection::vec(any::<u8>(), 0..4000),
        chunks in proptest::collection::vec(1usize..700, 1..8),
        front in 0usize..5000,
        back in 0usize..5000,
    ) {
        let mut c = chain_from(&data, &chunks);
        c.trim_front(front);
        let lo = front.min(data.len());
        c.trim_back(back);
        let hi = data.len().saturating_sub(back).max(lo);
        prop_assert_eq!(c.to_vec_for_test(), &data[lo..hi]);
    }

    #[test]
    fn prepend_then_trim_front_roundtrip(
        hdr in proptest::collection::vec(any::<u8>(), 0..400),
        body in proptest::collection::vec(any::<u8>(), 0..3000),
    ) {
        let mut meter = CopyMeter::new();
        let mut c = MbufChain::with_leading_space(64);
        c.append_bytes(&body, &mut meter);
        c.prepend_bytes(&hdr, &mut meter);
        prop_assert_eq!(c.len(), hdr.len() + body.len());
        let mut expect = hdr.clone();
        expect.extend_from_slice(&body);
        prop_assert_eq!(c.to_vec_for_test(), expect);
        c.trim_front(hdr.len());
        prop_assert_eq!(c.to_vec_for_test(), body);
    }

    #[test]
    fn pullup_preserves_content(
        data in proptest::collection::vec(any::<u8>(), 1..4000),
        chunks in proptest::collection::vec(1usize..300, 1..8),
        n_frac in 0.0f64..=1.0,
    ) {
        let mut meter = CopyMeter::new();
        let mut c = chain_from(&data, &chunks);
        let n = (((data.len().min(2048)) as f64) * n_frac) as usize;
        c.pullup(n, &mut meter);
        prop_assert_eq!(c.to_vec_for_test(), data);
        if n > 0 {
            prop_assert!(c.mbufs().next().unwrap().len() >= n);
        }
    }

    #[test]
    fn copy_out_matches_slice(
        data in proptest::collection::vec(any::<u8>(), 1..4000),
        chunks in proptest::collection::vec(1usize..300, 1..8),
        lo_frac in 0.0f64..=1.0,
        len_frac in 0.0f64..=1.0,
    ) {
        let mut meter = CopyMeter::new();
        let c = chain_from(&data, &chunks);
        let lo = ((data.len() as f64) * lo_frac) as usize;
        let len = (((data.len() - lo) as f64) * len_frac) as usize;
        let mut buf = vec![0u8; len];
        c.copy_out(lo, &mut buf, &mut meter);
        prop_assert_eq!(buf, &data[lo..lo + len]);
    }
}
