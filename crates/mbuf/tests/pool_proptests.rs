//! Property tests for the cluster free list: recycling buffers must be
//! invisible to chain semantics.

use proptest::prelude::*;
use renofs_mbuf::{pool, CopyMeter, MbufChain, MCLBYTES, MLEN};

fn chain_from(data: &[u8], chunk_sizes: &[usize]) -> MbufChain {
    let mut meter = CopyMeter::new();
    let mut c = MbufChain::new();
    let mut rest = data;
    let mut i = 0;
    while !rest.is_empty() {
        let n = chunk_sizes
            .get(i % chunk_sizes.len().max(1))
            .copied()
            .unwrap_or(rest.len())
            .clamp(1, rest.len());
        c.append_bytes(&rest[..n], &mut meter);
        rest = &rest[n..];
        i += 1;
    }
    c
}

/// Runs one op sequence (append / split / rejoin / share / pullup) and
/// returns every observable byte it produced.
fn run_ops(data: &[u8], chunks: &[usize], at_frac: f64, share_frac: f64) -> Vec<Vec<u8>> {
    let mut meter = CopyMeter::new();
    let mut c = chain_from(data, chunks);
    let at = ((data.len() as f64) * at_frac) as usize;
    let tail = c.split_off(at, &mut meter);
    let tail_flat = tail.to_vec_for_test();
    c.append_chain(tail);
    let lo = ((data.len() as f64) * share_frac) as usize;
    let shared = c.share_range(lo, data.len() - lo, &mut meter);
    let n = data.len().min(MCLBYTES / 2);
    if n > 0 {
        c.pullup(n, &mut meter);
    }
    vec![c.to_vec_for_test(), tail_flat, shared.to_vec_for_test()]
}

/// Drops a pile of chains full of junk so the free list (when enabled)
/// holds buffers that previously carried other data.
fn churn_pool() {
    let mut meter = CopyMeter::new();
    let junk: Vec<u8> = (0..6 * MCLBYTES).map(|i| (i % 251) as u8).collect();
    for _ in 0..4 {
        let c = MbufChain::from_slice(&junk, &mut meter);
        drop(c);
    }
}

proptest! {
    /// The pool is a pure allocator optimization: the same op sequence
    /// must observe identical bytes with pooling off and with a primed
    /// (dirty) free list.
    #[test]
    fn pooled_and_unpooled_chains_agree(
        data in proptest::collection::vec(any::<u8>(), 1..6000),
        chunks in proptest::collection::vec(1usize..700, 1..8),
        at_frac in 0.0f64..=1.0,
        share_frac in 0.0f64..=1.0,
    ) {
        pool::set_capacity(0);
        pool::reset();
        let unpooled = run_ops(&data, &chunks, at_frac, share_frac);

        pool::set_capacity(128);
        pool::reset();
        churn_pool();
        let pooled = run_ops(&data, &chunks, at_frac, share_frac);

        prop_assert_eq!(unpooled, pooled);
    }

    /// A recycled cluster must come back with no stale length or bytes:
    /// chains built from recycled buffers show exactly the new data.
    #[test]
    fn recycled_clusters_carry_no_stale_state(
        fill in any::<u8>(),
        len in (MLEN + 1)..5000usize,
    ) {
        pool::set_capacity(128);
        pool::reset();
        churn_pool();
        let before = pool::stats();
        let data = vec![fill; len];
        let c = chain_from(&data, &[997]);
        let after = pool::stats();
        prop_assert!(
            after.reused > before.reused,
            "cluster-sized appends must hit the primed free list"
        );
        prop_assert_eq!(c.len(), len);
        prop_assert_eq!(c.to_vec_for_test(), data);
    }
}
