//! BSD-style mbuf chains.
//!
//! The paper's implementation builds and decomposes NFS RPC messages
//! *directly in mbuf data areas* (the `nfsm_build`/`nfsm_dissect` macros)
//! to avoid intermediate buffers and to stay independent of the transport
//! protocol. This crate reproduces that data structure:
//!
//! - Small mbufs hold up to [`MLEN`] bytes inline; larger data lives in
//!   [`MCLBYTES`]-sized *clusters*.
//! - Clusters are reference-counted, so [`MbufChain::share_range`] (the
//!   analog of `m_copym`) duplicates a chain without copying cluster bytes
//!   — this is what lets TCP keep retransmission data, and what the
//!   "page loaning" future-work extension builds on.
//! - Every genuine memory-to-memory copy is charged to a [`CopyMeter`].
//!   Hosts convert metered bytes into CPU time, which is how the paper's
//!   Section 3 observation ("the mbuf-to-interface copy routine topped the
//!   kernel profile") is reproduced quantitatively.

mod chain;
mod cursor;
pub mod inline_deque;
mod meter;
pub mod pool;

pub use chain::{Mbuf, MbufChain, MCLBYTES, MLEN};
pub use cursor::Cursor;
pub use inline_deque::InlineDeque;
pub use meter::CopyMeter;
