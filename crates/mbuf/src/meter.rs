//! Accounting for memory-to-memory copies.

/// Counts bytes moved by genuine memory-to-memory copies.
///
/// The paper's Section 3 found that on a loaded NFS server more than a
/// third of all CPU cycles went to copying mbuf data, and that replacing
/// the interface copy with page-table-entry swaps cut total CPU overhead
/// by ~12 %. To reproduce that, every copying operation in this workspace
/// charges a meter, and the host model converts metered bytes into CPU
/// time at the MicroVAXII's measured copy bandwidth.
///
/// # Examples
///
/// ```
/// use renofs_mbuf::CopyMeter;
///
/// let mut m = CopyMeter::new();
/// m.charge(100);
/// m.charge(28);
/// assert_eq!(m.bytes(), 128);
/// assert_eq!(m.ops(), 2);
/// assert_eq!(m.take(), (128, 2));
/// assert_eq!(m.bytes(), 0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CopyMeter {
    bytes: u64,
    ops: u64,
    cluster_allocs: u64,
}

impl CopyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        CopyMeter::default()
    }

    /// Charges one copy of `n` bytes.
    pub fn charge(&mut self, n: usize) {
        self.bytes += n as u64;
        self.ops += 1;
    }

    /// Charges `n` cluster-buffer allocations (free-list misses count
    /// the same as hits: the charge is for taking a cluster at all).
    pub fn charge_cluster_allocs(&mut self, n: usize) {
        self.cluster_allocs += n as u64;
    }

    /// Cluster allocations since the last [`CopyMeter::take`].
    pub fn cluster_allocs(&self) -> u64 {
        self.cluster_allocs
    }

    /// Bytes copied since the last [`CopyMeter::take`].
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Copy operations since the last [`CopyMeter::take`].
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Returns `(bytes, ops)` and resets the meter.
    pub fn take(&mut self) -> (u64, u64) {
        let out = (self.bytes, self.ops);
        self.bytes = 0;
        self.ops = 0;
        self.cluster_allocs = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut m = CopyMeter::new();
        assert_eq!(m.bytes(), 0);
        m.charge(10);
        m.charge(0);
        m.charge(5);
        assert_eq!(m.bytes(), 15);
        assert_eq!(m.ops(), 3);
    }

    #[test]
    fn take_resets() {
        let mut m = CopyMeter::new();
        m.charge(7);
        m.charge_cluster_allocs(3);
        assert_eq!(m.cluster_allocs(), 3);
        assert_eq!(m.take(), (7, 1));
        assert_eq!(m.take(), (0, 0));
        assert_eq!(m.cluster_allocs(), 0);
    }
}
