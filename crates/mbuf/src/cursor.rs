//! Sequential read access to a chain.

use crate::chain::MbufChain;

/// A read cursor over an [`MbufChain`], used by the XDR dissector.
///
/// Header-sized reads through the cursor are not charged to a copy meter:
/// the real kernel's `nfsm_disect` reads fields in place, and the CPU cost
/// of protocol decoding is priced per-RPC by the host model instead.
///
/// # Examples
///
/// ```
/// use renofs_mbuf::{CopyMeter, Cursor, MbufChain};
///
/// let mut meter = CopyMeter::new();
/// let chain = MbufChain::from_slice(b"abcdef", &mut meter);
/// let mut cur = Cursor::new(&chain);
/// let mut buf = [0u8; 3];
/// cur.read_exact(&mut buf).unwrap();
/// assert_eq!(&buf, b"abc");
/// assert_eq!(cur.remaining(), 3);
/// ```
pub struct Cursor<'a> {
    chain: &'a MbufChain,
    pos: usize,
}

// A short read has exactly one cause (not enough bytes), so the unit
// error carries full information; callers map it to their protocol's
// truncation error.
#[allow(clippy::result_unit_err)]
impl<'a> Cursor<'a> {
    /// Creates a cursor at the start of the chain.
    pub fn new(chain: &'a MbufChain) -> Self {
        Cursor { chain, pos: 0 }
    }

    /// Current byte offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.chain.len() - self.pos
    }

    /// Whether the cursor is at the end.
    pub fn is_at_end(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads exactly `buf.len()` bytes, advancing the cursor.
    ///
    /// Returns `Err(())` (leaving the cursor unchanged) if fewer bytes
    /// remain — the dissector turns this into a garbled-RPC error.
    pub fn read_exact(&mut self, buf: &mut [u8]) -> Result<(), ()> {
        if buf.len() > self.remaining() {
            return Err(());
        }
        self.chain.copy_out_unmetered(self.pos, buf);
        self.pos += buf.len();
        Ok(())
    }

    /// Reads a big-endian `u32` (the XDR unit).
    pub fn read_u32(&mut self) -> Result<u32, ()> {
        let mut b = [0u8; 4];
        self.read_exact(&mut b)?;
        Ok(u32::from_be_bytes(b))
    }

    /// Skips `n` bytes.
    pub fn skip(&mut self, n: usize) -> Result<(), ()> {
        if n > self.remaining() {
            return Err(());
        }
        self.pos += n;
        Ok(())
    }

    /// Reads `n` bytes into a fresh `Vec`.
    pub fn read_vec(&mut self, n: usize) -> Result<Vec<u8>, ()> {
        let mut v = vec![0u8; n];
        self.read_exact(&mut v)?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::CopyMeter;

    #[test]
    fn sequential_reads() {
        let mut m = CopyMeter::new();
        let chain = MbufChain::from_slice(&[0, 0, 0, 7, 0, 0, 1, 0], &mut m);
        let mut cur = Cursor::new(&chain);
        assert_eq!(cur.read_u32().unwrap(), 7);
        assert_eq!(cur.read_u32().unwrap(), 256);
        assert!(cur.is_at_end());
        assert!(cur.read_u32().is_err());
    }

    #[test]
    fn short_read_leaves_cursor() {
        let mut m = CopyMeter::new();
        let chain = MbufChain::from_slice(b"abc", &mut m);
        let mut cur = Cursor::new(&chain);
        let mut buf = [0u8; 5];
        assert!(cur.read_exact(&mut buf).is_err());
        assert_eq!(cur.position(), 0, "failed read must not advance");
        let mut ok = [0u8; 3];
        cur.read_exact(&mut ok).unwrap();
        assert_eq!(&ok, b"abc");
    }

    #[test]
    fn skip_and_read_vec() {
        let mut m = CopyMeter::new();
        let data: Vec<u8> = (0..100).collect();
        let chain = MbufChain::from_slice(&data, &mut m);
        let mut cur = Cursor::new(&chain);
        cur.skip(40).unwrap();
        assert_eq!(cur.read_vec(5).unwrap(), &data[40..45]);
        assert!(cur.skip(100).is_err());
    }

    #[test]
    fn reads_across_segment_boundaries() {
        let mut m = CopyMeter::new();
        let data: Vec<u8> = (0..6000u32).map(|i| (i % 256) as u8).collect();
        let chain = MbufChain::from_slice(&data, &mut m);
        let mut cur = Cursor::new(&chain);
        cur.skip(2040).unwrap();
        // This read straddles the first/second cluster boundary at 2048.
        let v = cur.read_vec(32).unwrap();
        assert_eq!(v, &data[2040..2072]);
    }
}
