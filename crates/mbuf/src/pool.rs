//! A free list of cluster buffers.
//!
//! 4.3BSD keeps mbuf clusters on a kernel free list (`mclfree`) so the
//! hot allocate/free path never touches the page allocator. The
//! simulator's original `Mbuf::cluster()` instead allocated a fresh
//! 2 KB `Vec` per cluster, which dominated the allocator profile of
//! long sweeps. This module reproduces the free list: dropped cluster
//! buffers return here and are handed back out, cleared, on the next
//! allocation.
//!
//! The list is thread-local, matching how the experiment runner
//! parallelizes (whole simulations per worker thread), so there is no
//! locking on the allocation path.

use std::cell::RefCell;

use crate::chain::MCLBYTES;

/// Free-list capacity before returned buffers are dropped for real.
const DEFAULT_CAPACITY: usize = 128;

struct Pool {
    free: Vec<Vec<u8>>,
    capacity: usize,
    fresh: u64,
    reused: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = const {
        RefCell::new(Pool {
            free: Vec::new(),
            capacity: DEFAULT_CAPACITY,
            fresh: 0,
            reused: 0,
        })
    };
}

/// A snapshot of this thread's pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Cluster buffers allocated fresh from the heap.
    pub fresh: u64,
    /// Cluster buffers recycled from the free list.
    pub reused: u64,
    /// Buffers currently parked on the free list.
    pub free: usize,
}

/// Returns this thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            fresh: p.fresh,
            reused: p.reused,
            free: p.free.len(),
        }
    })
}

/// Sets the free-list capacity for this thread. `0` disables pooling:
/// every allocation is fresh and every drop is final — useful for
/// comparing pooled and unpooled behavior.
pub fn set_capacity(capacity: usize) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.capacity = capacity;
        p.free.truncate(capacity);
    });
}

/// Empties the free list and zeroes the counters for this thread.
pub fn reset() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.fresh = 0;
        p.reused = 0;
    });
}

fn take() -> Vec<u8> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        match p.free.pop() {
            Some(v) => {
                debug_assert!(v.is_empty() && v.capacity() >= MCLBYTES);
                p.reused += 1;
                v
            }
            None => {
                p.fresh += 1;
                Vec::with_capacity(MCLBYTES)
            }
        }
    })
}

fn give(mut v: Vec<u8>) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.free.len() < p.capacity && v.capacity() >= MCLBYTES {
            v.clear();
            p.free.push(v);
        }
    });
}

/// Owned cluster storage whose backing buffer returns to the free list
/// on drop.
///
/// Dereferences to the inner `Vec<u8>`, so cluster code indexes and
/// extends it exactly as it did the bare `Vec`.
pub(crate) struct ClusterBuf(Option<Vec<u8>>);

impl ClusterBuf {
    /// Allocates from the free list, or fresh if it is empty. The
    /// returned buffer is always empty (no stale length or bytes).
    pub(crate) fn alloc() -> Self {
        ClusterBuf(Some(take()))
    }
}

impl std::ops::Deref for ClusterBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        self.0.as_ref().expect("buffer present until drop")
    }
}

impl std::ops::DerefMut for ClusterBuf {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        self.0.as_mut().expect("buffer present until drop")
    }
}

impl Drop for ClusterBuf {
    fn drop(&mut self) {
        if let Some(v) = self.0.take() {
            give(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_recycle_through_the_free_list() {
        reset();
        let before = stats();
        {
            let mut a = ClusterBuf::alloc();
            a.extend_from_slice(&[7u8; 100]);
        }
        let one = ClusterBuf::alloc();
        assert!(one.is_empty(), "recycled buffer must come back empty");
        assert!(one.capacity() >= MCLBYTES);
        let after = stats();
        assert_eq!(after.reused, before.reused + 1);
    }

    #[test]
    fn capacity_zero_disables_pooling() {
        reset();
        set_capacity(0);
        {
            let mut a = ClusterBuf::alloc();
            a.push(1);
        }
        let s = stats();
        assert_eq!(s.free, 0, "nothing parked when disabled");
        drop(ClusterBuf::alloc());
        assert_eq!(stats().reused, 0);
        set_capacity(DEFAULT_CAPACITY);
        reset();
    }
}
