//! A free list of cluster buffers.
//!
//! 4.3BSD keeps mbuf clusters on a kernel free list (`mclfree`) so the
//! hot allocate/free path never touches the page allocator. The
//! simulator's original `Mbuf::cluster()` instead allocated a fresh
//! 2 KB `Vec` per cluster, which dominated the allocator profile of
//! long sweeps. This module reproduces the free list: dropped cluster
//! buffers return here and are handed back out, cleared, on the next
//! allocation.
//!
//! The free list parks the whole `Arc<ClusterBuf>`, not just the byte
//! buffer: `Arc::new` is itself a heap allocation, and an 8 KB read
//! reply takes four clusters, so recycling only the `Vec` would still
//! cost four allocations per RPC. An `Arc` is recyclable exactly when
//! its strong count has dropped to one — no other mbuf window
//! references the cluster.
//!
//! The fast path is a thread-local list, matching how the experiment
//! runner parallelizes (whole simulations per worker thread), so the
//! common allocate/free pair never locks. Underneath it sits a shared
//! overflow tier: workload generator procs run on their own OS threads
//! and build call messages that the world thread consumes and frees,
//! while reply chains travel the opposite way — so each thread's local
//! list only ever sees one side of the flow and would starve (the taker
//! allocating fresh forever, the freer discarding at capacity). A
//! thread whose list fills spills a batch to the shared tier and a
//! thread whose list empties refills a batch from it, so buffers
//! circulate back to where they are taken and the lock is amortized
//! over [`XFER_BATCH`] operations.

use std::cell::RefCell;
use std::sync::{Arc, Mutex, MutexGuard};

use crate::chain::{MCLBYTES, MLEN};

/// Free-list capacity before returned buffers spill to the shared tier.
const DEFAULT_CAPACITY: usize = 128;

/// Free-list capacity for small mbuf data areas.
const SMALL_DEFAULT_CAPACITY: usize = 256;

/// Shared-tier capacity for cluster buffers (all threads combined).
const SHARED_CLUSTER_CAPACITY: usize = 1024;

/// Shared-tier capacity for small-mbuf data areas.
const SHARED_SMALL_CAPACITY: usize = 4096;

/// Buffers moved per spill or refill of the shared tier.
const XFER_BATCH: usize = 32;

/// The cross-thread overflow tier.
struct Shared {
    clusters: Vec<Arc<ClusterBuf>>,
    // The `Box` is the resource being pooled: `SmallBuf` hands the same
    // heap block back out, so storing unboxed arrays would defeat it.
    #[allow(clippy::vec_box)]
    smalls: Vec<Box<[u8; MLEN]>>,
}

static SHARED: Mutex<Shared> = Mutex::new(Shared {
    clusters: Vec::new(),
    smalls: Vec::new(),
});

fn shared() -> MutexGuard<'static, Shared> {
    // The tier holds plain buffers, so a panic while the lock was held
    // cannot leave them inconsistent; recover instead of poisoning every
    // later test in the process.
    SHARED.lock().unwrap_or_else(|e| e.into_inner())
}

struct Pool {
    free: Vec<Arc<ClusterBuf>>,
    capacity: usize,
    fresh: u64,
    reused: u64,
}

thread_local! {
    static POOL: RefCell<Pool> = const {
        RefCell::new(Pool {
            free: Vec::new(),
            capacity: DEFAULT_CAPACITY,
            fresh: 0,
            reused: 0,
        })
    };
}

/// A snapshot of this thread's pool counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Cluster buffers allocated fresh from the heap.
    pub fresh: u64,
    /// Cluster buffers recycled from the free list.
    pub reused: u64,
    /// Buffers currently parked on the free list.
    pub free: usize,
}

/// Returns this thread's pool counters.
pub fn stats() -> PoolStats {
    POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            fresh: p.fresh,
            reused: p.reused,
            free: p.free.len(),
        }
    })
}

/// Sets the free-list capacity for this thread. `0` disables pooling:
/// every allocation is fresh and every drop is final — useful for
/// comparing pooled and unpooled behavior.
pub fn set_capacity(capacity: usize) {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.capacity = capacity;
        p.free.truncate(capacity);
    });
}

/// Empties the free lists (cluster and small) and zeroes the counters
/// for this thread.
pub fn reset() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.fresh = 0;
        p.reused = 0;
    });
    SMALL_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.free.clear();
        p.fresh = 0;
        p.reused = 0;
    });
}

fn take() -> Arc<ClusterBuf> {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.free.is_empty() && p.capacity > 0 {
            let mut sh = shared();
            let n = sh.clusters.len().min(XFER_BATCH);
            let at = sh.clusters.len() - n;
            p.free.extend(sh.clusters.drain(at..));
        }
        match p.free.pop() {
            Some(mut rc) => {
                p.reused += 1;
                let buf = &mut Arc::get_mut(&mut rc)
                    .expect("pooled clusters are unshared")
                    .0;
                debug_assert!(buf.capacity() >= MCLBYTES);
                buf.clear();
                rc
            }
            None => {
                p.fresh += 1;
                Arc::new(ClusterBuf(Vec::with_capacity(MCLBYTES)))
            }
        }
    })
}

fn give(rc: Arc<ClusterBuf>) {
    if Arc::strong_count(&rc) != 1 {
        return; // Another window still references the cluster.
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.capacity == 0 || rc.capacity() < MCLBYTES {
            return;
        }
        // A thread that has never *taken* a cluster is a pure producer —
        // a workload thread dropping reply chains shipped over from the
        // simulation loop. Letting it fill a full-size local free list
        // strands (threads × capacity) buffers where no allocation will
        // ever reuse them, and with a crowd of client threads the
        // consumer side re-allocates fresh for the entire fill window.
        // Producers stage only one transfer batch locally and spill it
        // to the shared tier, where the simulation thread refills from.
        let cap = if p.fresh + p.reused == 0 {
            XFER_BATCH.min(p.capacity)
        } else {
            p.capacity
        };
        if p.free.len() >= cap {
            let mut sh = shared();
            let room = SHARED_CLUSTER_CAPACITY - sh.clusters.len();
            let n = XFER_BATCH.min(room).min(p.free.len());
            let at = p.free.len() - n;
            sh.clusters.extend(p.free.drain(at..));
        }
        if p.free.len() < cap {
            p.free.push(rc);
        }
    });
}

/// The bytes of one cluster. Only reachable through [`ClusterRef`]; the
/// free list stores the whole `Arc<ClusterBuf>` so neither the buffer
/// nor the `Arc` allocation is repaid on the hot path.
pub(crate) struct ClusterBuf(Vec<u8>);

impl std::ops::Deref for ClusterBuf {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.0
    }
}

/// A reference-counted handle to pooled cluster storage: cloning shares
/// the cluster (`m_copym`), and dropping the last handle parks the
/// `Arc` on the free list instead of freeing it.
pub(crate) struct ClusterRef(Option<Arc<ClusterBuf>>);

impl ClusterRef {
    /// Allocates from the free list, or fresh if it is empty. The
    /// returned buffer is always empty (no stale length or bytes).
    pub(crate) fn alloc() -> Self {
        ClusterRef(Some(take()))
    }

    fn rc(&self) -> &Arc<ClusterBuf> {
        self.0.as_ref().expect("cluster present until drop")
    }

    /// Whether any other handle references this cluster.
    pub(crate) fn is_shared(&self) -> bool {
        Arc::strong_count(self.rc()) > 1
    }

    /// Mutable access to the bytes, only while unshared.
    pub(crate) fn get_mut(&mut self) -> Option<&mut Vec<u8>> {
        Arc::get_mut(self.0.as_mut().expect("cluster present until drop")).map(|c| &mut c.0)
    }

    /// Whether two handles share the same underlying cluster.
    pub(crate) fn same_storage(a: &ClusterRef, b: &ClusterRef) -> bool {
        Arc::ptr_eq(a.rc(), b.rc())
    }
}

impl Clone for ClusterRef {
    fn clone(&self) -> Self {
        ClusterRef(Some(Arc::clone(self.rc())))
    }
}

impl std::ops::Deref for ClusterRef {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.rc().0
    }
}

impl Drop for ClusterRef {
    fn drop(&mut self) {
        if let Some(rc) = self.0.take() {
            give(rc);
        }
    }
}

// ---------------------------------------------------------------------
// Small-mbuf data areas.
//
// The same recycling trick for the MLEN-byte inline areas: every RPC
// header, XDR fragment, and console message lives in small mbufs, so a
// busy simulation churns through them even faster than clusters.
// ---------------------------------------------------------------------

struct SmallPool {
    // See `Shared::smalls`: the pooled unit is the heap block itself.
    #[allow(clippy::vec_box)]
    free: Vec<Box<[u8; MLEN]>>,
    capacity: usize,
    fresh: u64,
    reused: u64,
}

thread_local! {
    static SMALL_POOL: RefCell<SmallPool> = const {
        RefCell::new(SmallPool {
            free: Vec::new(),
            capacity: SMALL_DEFAULT_CAPACITY,
            fresh: 0,
            reused: 0,
        })
    };
}

/// Returns this thread's small-mbuf pool counters.
pub fn small_stats() -> PoolStats {
    SMALL_POOL.with(|p| {
        let p = p.borrow();
        PoolStats {
            fresh: p.fresh,
            reused: p.reused,
            free: p.free.len(),
        }
    })
}

/// Sets the small-mbuf free-list capacity for this thread; `0` disables
/// pooling.
pub fn set_small_capacity(capacity: usize) {
    SMALL_POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.capacity = capacity;
        p.free.truncate(capacity);
    });
}

fn small_take() -> Box<[u8; MLEN]> {
    SMALL_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.free.is_empty() && p.capacity > 0 {
            let mut sh = shared();
            let n = sh.smalls.len().min(XFER_BATCH);
            let at = sh.smalls.len() - n;
            p.free.extend(sh.smalls.drain(at..));
        }
        match p.free.pop() {
            Some(b) => {
                p.reused += 1;
                b
            }
            None => {
                p.fresh += 1;
                Box::new([0u8; MLEN])
            }
        }
    })
}

fn small_give(b: Box<[u8; MLEN]>) {
    SMALL_POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.capacity == 0 {
            return;
        }
        // Same producer-thread rule as `give`: a thread that never
        // allocates small mbufs must not park them locally forever.
        let cap = if p.fresh + p.reused == 0 {
            XFER_BATCH.min(p.capacity)
        } else {
            p.capacity
        };
        if p.free.len() >= cap {
            let mut sh = shared();
            let room = SHARED_SMALL_CAPACITY - sh.smalls.len();
            let n = XFER_BATCH.min(room).min(p.free.len());
            let at = p.free.len() - n;
            sh.smalls.extend(p.free.drain(at..));
        }
        if p.free.len() < cap {
            p.free.push(b);
        }
    });
}

/// Owned small-mbuf storage whose data area returns to the free list on
/// drop.
///
/// Recycled areas are *not* re-zeroed: an mbuf only ever exposes the
/// `(off, len)` window its owner wrote via `append`/`prepend`, so stale
/// bytes outside the window are unobservable.
pub(crate) struct SmallBuf(Option<Box<[u8; MLEN]>>);

impl SmallBuf {
    /// Allocates from the free list, or zero-filled fresh storage.
    pub(crate) fn alloc() -> Self {
        SmallBuf(Some(small_take()))
    }
}

impl Clone for SmallBuf {
    fn clone(&self) -> Self {
        let mut b = small_take();
        b.copy_from_slice(&**self);
        SmallBuf(Some(b))
    }
}

impl std::ops::Deref for SmallBuf {
    type Target = [u8; MLEN];
    fn deref(&self) -> &[u8; MLEN] {
        self.0.as_ref().expect("buffer present until drop")
    }
}

impl std::ops::DerefMut for SmallBuf {
    fn deref_mut(&mut self) -> &mut [u8; MLEN] {
        self.0.as_mut().expect("buffer present until drop")
    }
}

impl Drop for SmallBuf {
    fn drop(&mut self) {
        if let Some(b) = self.0.take() {
            small_give(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the tests below and empties the shared tier, so one
    /// test's spills don't batch-refill into another's local list and
    /// skew its counters.
    fn isolated() -> MutexGuard<'static, ()> {
        static TEST_LOCK: Mutex<()> = Mutex::new(());
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let mut sh = shared();
        sh.clusters.clear();
        sh.smalls.clear();
        guard
    }

    #[test]
    fn buffers_recycle_through_the_free_list() {
        let _g = isolated();
        reset();
        let before = stats();
        {
            let mut a = ClusterRef::alloc();
            a.get_mut().unwrap().extend_from_slice(&[7u8; 100]);
        }
        let one = ClusterRef::alloc();
        assert!(one.is_empty(), "recycled buffer must come back empty");
        assert!(one.capacity() >= MCLBYTES);
        let after = stats();
        assert_eq!(after.reused, before.reused + 1);
    }

    #[test]
    fn shared_clusters_are_not_recycled_until_the_last_drop() {
        let _g = isolated();
        reset();
        let a = ClusterRef::alloc();
        let b = a.clone();
        drop(a);
        assert_eq!(stats().free, 0, "still referenced by the clone");
        drop(b);
        assert_eq!(stats().free, 1, "last handle parks the cluster");
    }

    #[test]
    fn buffers_circulate_across_threads() {
        let _g = isolated();
        // A thread that frees more than its local capacity spills to the
        // shared tier; a different thread with an empty local list must
        // then reuse those buffers instead of allocating fresh.
        std::thread::spawn(|| {
            let held: Vec<ClusterRef> = (0..2 * DEFAULT_CAPACITY)
                .map(|_| ClusterRef::alloc())
                .collect();
            drop(held);
        })
        .join()
        .unwrap();
        std::thread::spawn(|| {
            let _c = ClusterRef::alloc();
            let s = stats();
            assert_eq!(s.fresh, 0, "must come from the shared tier");
            assert_eq!(s.reused, 1);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn capacity_zero_disables_pooling() {
        let _g = isolated();
        reset();
        set_capacity(0);
        {
            let mut a = ClusterRef::alloc();
            a.get_mut().unwrap().push(1);
        }
        let s = stats();
        assert_eq!(s.free, 0, "nothing parked when disabled");
        drop(ClusterRef::alloc());
        assert_eq!(stats().reused, 0);
        set_capacity(DEFAULT_CAPACITY);
        reset();
    }
}
