//! Mbufs and mbuf chains.

use std::fmt;

use crate::inline_deque::InlineDeque;
use crate::meter::CopyMeter;
use crate::pool::{ClusterRef, SmallBuf};

/// Inline data capacity of a small mbuf (4.3BSD's `MLEN` less headers).
pub const MLEN: usize = 112;

/// Capacity of an mbuf cluster (4.3BSD's `MCLBYTES`).
pub const MCLBYTES: usize = 2048;

/// Segments kept inline in the chain before the list spills to the heap.
/// Six covers the common RPC shapes: a header mbuf plus the four clusters
/// of an 8 KB read/write, with one spare.
const SEG_INLINE: usize = 6;

type SegList = InlineDeque<Mbuf, SEG_INLINE>;

enum Storage {
    /// Unique inline storage, recycled through the small-mbuf free list.
    Small(SmallBuf),
    /// Reference-counted cluster; immutable once the handle is shared.
    /// The whole `Arc` comes from (and returns to) the cluster free list.
    Cluster(ClusterRef),
}

impl Clone for Storage {
    fn clone(&self) -> Self {
        match self {
            Storage::Small(b) => Storage::Small(b.clone()),
            Storage::Cluster(rc) => Storage::Cluster(rc.clone()),
        }
    }
}

/// One mbuf: a window (`off`, `len`) onto small or cluster storage.
#[derive(Clone)]
pub struct Mbuf {
    storage: Storage,
    off: usize,
    len: usize,
}

impl Mbuf {
    fn small() -> Self {
        Mbuf {
            storage: Storage::Small(SmallBuf::alloc()),
            off: 0,
            len: 0,
        }
    }

    fn small_with_leading(leading: usize) -> Self {
        debug_assert!(leading <= MLEN);
        let mut m = Mbuf::small();
        m.off = leading;
        m
    }

    fn cluster() -> Self {
        Mbuf {
            storage: Storage::Cluster(ClusterRef::alloc()),
            off: 0,
            len: 0,
        }
    }

    /// The bytes this mbuf covers.
    pub fn data(&self) -> &[u8] {
        match &self.storage {
            Storage::Small(b) => &b[self.off..self.off + self.len],
            Storage::Cluster(rc) => &rc[self.off..self.off + self.len],
        }
    }

    /// Length of the data window.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether this mbuf's storage is a shared cluster (as opposed to
    /// unique inline or unshared cluster storage).
    pub fn is_shared_cluster(&self) -> bool {
        match &self.storage {
            Storage::Small(_) => false,
            Storage::Cluster(rc) => rc.is_shared(),
        }
    }

    /// Whether this mbuf uses cluster storage at all.
    pub fn is_cluster(&self) -> bool {
        matches!(self.storage, Storage::Cluster(_))
    }

    fn leading_space(&self) -> usize {
        self.off
    }

    /// Bytes that can be appended in place.
    fn trailing_space(&mut self) -> usize {
        match &mut self.storage {
            Storage::Small(_) => MLEN - self.off - self.len,
            Storage::Cluster(rc) => {
                // Appendable only while the cluster is unshared and the
                // window ends at the cluster's fill point.
                if rc.get_mut().is_some() {
                    let fill = rc.len();
                    if self.off + self.len == fill {
                        MCLBYTES - fill
                    } else {
                        0
                    }
                } else {
                    0
                }
            }
        }
    }

    /// Copies `src` into trailing space. Caller must ensure it fits.
    fn append(&mut self, src: &[u8]) {
        match &mut self.storage {
            Storage::Small(b) => {
                let end = self.off + self.len;
                b[end..end + src.len()].copy_from_slice(src);
            }
            Storage::Cluster(rc) => {
                let v = rc.get_mut().expect("append to shared cluster");
                debug_assert_eq!(self.off + self.len, v.len());
                v.extend_from_slice(src);
            }
        }
        self.len += src.len();
    }

    /// Copies `src` into leading space. Caller must ensure it fits.
    fn prepend(&mut self, src: &[u8]) {
        match &mut self.storage {
            Storage::Small(b) => {
                let start = self.off - src.len();
                b[start..self.off].copy_from_slice(src);
                self.off = start;
                self.len += src.len();
            }
            Storage::Cluster(_) => unreachable!("prepend into clusters unsupported"),
        }
    }

    /// A new mbuf sharing this one's storage, windowed to
    /// `[self.off + rel, self.off + rel + len)`. For clusters this is a
    /// reference share; for small mbufs the caller should copy instead.
    fn share_window(&self, rel: usize, len: usize) -> Mbuf {
        debug_assert!(rel + len <= self.len);
        Mbuf {
            storage: self.storage.clone(),
            off: self.off + rel,
            len,
        }
    }

    /// Widens this window to absorb `next` when both are views of the
    /// same cluster and `next` starts exactly where this one ends — the
    /// shape fragmentation leaves behind once a datagram is reassembled.
    fn try_merge(&mut self, next: &Mbuf) -> bool {
        match (&self.storage, &next.storage) {
            (Storage::Cluster(a), Storage::Cluster(b))
                if ClusterRef::same_storage(a, b) && self.off + self.len == next.off =>
            {
                self.len += next.len;
                true
            }
            _ => false,
        }
    }
}

impl fmt::Debug for Mbuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.storage {
            Storage::Small(_) => "small",
            Storage::Cluster(rc) => {
                if rc.is_shared() {
                    "cluster(shared)"
                } else {
                    "cluster"
                }
            }
        };
        write!(f, "Mbuf[{kind} off={} len={}]", self.off, self.len)
    }
}

/// A chain of mbufs holding one logical message.
///
/// # Examples
///
/// ```
/// use renofs_mbuf::{CopyMeter, MbufChain};
///
/// let mut meter = CopyMeter::new();
/// let mut chain = MbufChain::new();
/// chain.append_bytes(b"hello ", &mut meter);
/// chain.append_bytes(b"world", &mut meter);
/// assert_eq!(chain.len(), 11);
/// assert_eq!(chain.to_vec_for_test(), b"hello world");
/// assert_eq!(meter.bytes(), 11);
/// ```
pub struct MbufChain {
    segs: SegList,
    len: usize,
}

impl Default for MbufChain {
    fn default() -> Self {
        Self::new()
    }
}

impl Clone for MbufChain {
    /// Clones the chain, sharing cluster storage (like `m_copym` of the
    /// whole chain). Small-mbuf bytes are duplicated but not metered;
    /// use [`MbufChain::share_range`] when accounting matters.
    fn clone(&self) -> Self {
        MbufChain {
            segs: self.segs.clone(),
            len: self.len,
        }
    }
}

impl MbufChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        MbufChain {
            segs: SegList::new(),
            len: 0,
        }
    }

    /// Creates an empty chain whose first small mbuf reserves `leading`
    /// bytes of front space so lower layers can prepend headers without
    /// allocating (the `MH_ALIGN` idiom).
    pub fn with_leading_space(leading: usize) -> Self {
        let mut c = MbufChain::new();
        c.segs
            .push_back(Mbuf::small_with_leading(leading.min(MLEN)));
        c
    }

    /// Builds a chain by copying `src`, charging the meter.
    pub fn from_slice(src: &[u8], meter: &mut CopyMeter) -> Self {
        let mut c = MbufChain::new();
        c.append_bytes(src, meter);
        c
    }

    /// Total data length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chain holds no data.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of mbufs in the chain (empty reserved mbufs included).
    pub fn seg_count(&self) -> usize {
        self.segs.len()
    }

    /// Iterates over the data segments (skipping empty mbufs).
    pub fn segments(&self) -> impl Iterator<Item = &[u8]> {
        self.segs.iter().filter(|m| !m.is_empty()).map(|m| m.data())
    }

    /// Iterates over the mbufs themselves.
    pub fn mbufs(&self) -> impl Iterator<Item = &Mbuf> {
        self.segs.iter()
    }

    /// Appends `src` by copying, charging the meter for the copied
    /// bytes and for any clusters taken from the free list.
    pub fn append_bytes(&mut self, src: &[u8], meter: &mut CopyMeter) {
        if src.is_empty() {
            return;
        }
        meter.charge(src.len());
        let allocs = self.append_bytes_unmetered(src);
        meter.charge_cluster_allocs(allocs);
    }

    /// Appends `src` by copying without charging the meter. Reserved for
    /// contexts where the copy is priced separately (e.g. test fixtures).
    /// Returns the number of clusters allocated along the way.
    pub fn append_bytes_unmetered(&mut self, mut src: &[u8]) -> usize {
        self.len += src.len();
        let mut allocs = 0;
        while !src.is_empty() {
            let space = match self.segs.back_mut() {
                Some(m) => m.trailing_space(),
                None => 0,
            };
            if space == 0 {
                if src.len() > MLEN {
                    self.segs.push_back(Mbuf::cluster());
                    allocs += 1;
                } else {
                    self.segs.push_back(Mbuf::small());
                }
                continue;
            }
            let n = space.min(src.len());
            self.segs.back_mut().unwrap().append(&src[..n]);
            src = &src[n..];
        }
        allocs
    }

    /// Prepends `src` (a protocol header), charging the meter. Uses the
    /// first mbuf's leading space when available (`M_PREPEND`).
    pub fn prepend_bytes(&mut self, src: &[u8], meter: &mut CopyMeter) {
        if src.is_empty() {
            return;
        }
        meter.charge(src.len());
        self.len += src.len();
        if let Some(first) = self.segs.front_mut() {
            if !first.is_cluster() && first.leading_space() >= src.len() {
                first.prepend(src);
                return;
            }
        }
        // Chunk the header into fresh small mbufs, last chunk first.
        let mut rest = src;
        let mut front: Vec<Mbuf> = Vec::new();
        while !rest.is_empty() {
            let n = rest.len().min(MLEN);
            let mut m = Mbuf::small_with_leading(MLEN);
            m.prepend(&rest[rest.len() - n..]);
            front.push(m);
            rest = &rest[..rest.len() - n];
        }
        for m in front {
            self.segs.push_front(m);
        }
    }

    /// Concatenates `other` onto the end of this chain without copying
    /// (`m_cat`). Adjacent windows of one shared cluster coalesce back
    /// into a single mbuf, so a reassembled 8 KB datagram lands at its
    /// original four clusters instead of one window per fragment slice —
    /// keeping the segment list inline (no heap spill) and short.
    pub fn append_chain(&mut self, other: MbufChain) {
        self.len += other.len;
        for m in other.segs.into_iter() {
            if let Some(back) = self.segs.back_mut() {
                if back.try_merge(&m) {
                    continue;
                }
            }
            self.segs.push_back(m);
        }
    }

    /// Produces a chain covering `[off, off + len)` of this one, sharing
    /// cluster storage and copying (and metering) only small-mbuf bytes —
    /// the semantics of `m_copym`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn share_range(&self, off: usize, len: usize, meter: &mut CopyMeter) -> MbufChain {
        assert!(off + len <= self.len, "share_range out of bounds");
        let mut out = MbufChain::new();
        if len == 0 {
            return out;
        }
        let mut skip = off;
        let mut want = len;
        for m in &self.segs {
            if want == 0 {
                break;
            }
            if skip >= m.len() {
                skip -= m.len();
                continue;
            }
            let take = (m.len() - skip).min(want);
            if m.is_cluster() {
                out.segs.push_back(m.share_window(skip, take));
                out.len += take;
            } else {
                out.append_bytes(&m.data()[skip..skip + take], meter);
            }
            want -= take;
            skip = 0;
        }
        out
    }

    /// Splits the chain at `at`: `self` keeps `[0, at)`, the returned
    /// chain gets `[at, len)`. A cluster straddling the boundary is shared
    /// between both sides; a straddling small mbuf has its tail copied
    /// (and metered), matching `m_split`.
    ///
    /// # Panics
    ///
    /// Panics if `at > len`.
    pub fn split_off(&mut self, at: usize, meter: &mut CopyMeter) -> MbufChain {
        assert!(at <= self.len, "split_off out of bounds");
        let mut tail = MbufChain::new();
        if at == self.len {
            return tail;
        }
        let mut remaining = at;
        let mut head_segs = SegList::new();
        while let Some(mut m) = self.segs.pop_front() {
            if remaining >= m.len() {
                remaining -= m.len();
                head_segs.push_back(m);
                continue;
            }
            if remaining == 0 {
                tail.segs.push_back(m);
                continue;
            }
            // Straddling mbuf.
            let tail_len = m.len() - remaining;
            if m.is_cluster() {
                tail.segs.push_back(m.share_window(remaining, tail_len));
            } else {
                let mut copy = Mbuf::small();
                meter.charge(tail_len);
                copy.append(&m.data()[remaining..]);
                tail.segs.push_back(copy);
            }
            m.len = remaining;
            head_segs.push_back(m);
            remaining = 0;
        }
        tail.len = self.len - at;
        self.len = at;
        self.segs = head_segs;
        tail
    }

    /// Drops `n` bytes from the front (`m_adj` with a positive count).
    pub fn trim_front(&mut self, mut n: usize) {
        n = n.min(self.len);
        self.len -= n;
        while n > 0 {
            let front = self.segs.front_mut().expect("len accounting");
            if front.len() <= n {
                n -= front.len();
                self.segs.pop_front();
            } else {
                front.off += n;
                front.len -= n;
                n = 0;
            }
        }
        self.drop_empty();
    }

    /// Drops `n` bytes from the back (`m_adj` with a negative count).
    pub fn trim_back(&mut self, mut n: usize) {
        n = n.min(self.len);
        self.len -= n;
        while n > 0 {
            let back = self.segs.back_mut().expect("len accounting");
            if back.len() <= n {
                n -= back.len();
                self.segs.pop_back();
            } else {
                back.len -= n;
                n = 0;
            }
        }
        self.drop_empty();
    }

    fn drop_empty(&mut self) {
        self.segs.retain(|m| !m.is_empty());
    }

    /// Copies `dst.len()` bytes starting at `off` out of the chain,
    /// charging the meter (`m_copydata`).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_out(&self, off: usize, dst: &mut [u8], meter: &mut CopyMeter) {
        meter.charge(dst.len());
        self.copy_out_unmetered(off, dst);
    }

    /// [`MbufChain::copy_out`] without meter charging, for protocol header
    /// peeks and test assertions.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn copy_out_unmetered(&self, off: usize, dst: &mut [u8]) {
        assert!(off + dst.len() <= self.len, "copy_out out of bounds");
        let mut skip = off;
        let mut pos = 0;
        for m in &self.segs {
            if pos == dst.len() {
                break;
            }
            if skip >= m.len() {
                skip -= m.len();
                continue;
            }
            let take = (m.len() - skip).min(dst.len() - pos);
            dst[pos..pos + take].copy_from_slice(&m.data()[skip..skip + take]);
            pos += take;
            skip = 0;
        }
    }

    /// Flattens the chain to a `Vec`, charging the meter.
    pub fn to_vec(&self, meter: &mut CopyMeter) -> Vec<u8> {
        meter.charge(self.len);
        self.to_vec_for_test()
    }

    /// Flattens the chain to a `Vec` without metering.
    ///
    /// The name is deliberate: simulated-datapath code must account for
    /// every memory-to-memory copy, so it should call [`MbufChain::to_vec`]
    /// (or [`MbufChain::copy_out`]) with the owning subsystem's meter.
    /// This variant exists for test assertions, doc examples, and
    /// experiment-harness result inspection only.
    pub fn to_vec_for_test(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.len);
        for seg in self.segments() {
            out.extend_from_slice(seg);
        }
        out
    }

    /// Ensures the first `n` bytes are contiguous in the first mbuf
    /// (`m_pullup`), copying (and metering) if necessary.
    ///
    /// # Panics
    ///
    /// Panics if `n > len` or `n > MCLBYTES`.
    pub fn pullup(&mut self, n: usize, meter: &mut CopyMeter) {
        assert!(n <= self.len, "pullup beyond chain length");
        assert!(n <= MCLBYTES, "pullup larger than a cluster");
        if let Some(first) = self.segs.front() {
            if first.len() >= n {
                return;
            }
        }
        let mut head = vec![0u8; n];
        self.copy_out_unmetered(0, &mut head);
        meter.charge(n);
        self.trim_front(n);
        let mut lead = MbufChain::new();
        let allocs = lead.append_bytes_unmetered(&head);
        meter.charge_cluster_allocs(allocs);
        lead.len = n;
        for m in lead.segs.into_iter().rev() {
            self.segs.push_front(m);
        }
        self.len += n;
    }
}

impl fmt::Debug for MbufChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MbufChain[len={} segs={}]", self.len, self.segs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meter() -> CopyMeter {
        CopyMeter::new()
    }

    #[test]
    fn append_small_and_large() {
        let mut m = meter();
        let mut c = MbufChain::new();
        c.append_bytes(b"abc", &mut m);
        assert_eq!(c.seg_count(), 1);
        let big = vec![7u8; 5000];
        c.append_bytes(&big, &mut m);
        assert_eq!(c.len(), 5003);
        let flat = c.to_vec_for_test();
        assert_eq!(&flat[..3], b"abc");
        assert!(flat[3..].iter().all(|&b| b == 7));
        assert_eq!(m.bytes(), 5003);
    }

    #[test]
    fn large_appends_use_clusters() {
        let mut m = meter();
        let mut c = MbufChain::new();
        c.append_bytes(&vec![1u8; 8192], &mut m);
        assert!(
            c.mbufs().filter(|b| b.is_cluster()).count() >= 4,
            "8K should occupy >= 4 clusters"
        );
        // 8192 / 2048 = 4 exactly.
        assert_eq!(c.seg_count(), 4);
    }

    #[test]
    fn prepend_uses_leading_space() {
        let mut m = meter();
        let mut c = MbufChain::with_leading_space(64);
        c.append_bytes(b"payload", &mut m);
        let before = c.seg_count();
        c.prepend_bytes(b"HDR:", &mut m);
        assert_eq!(c.seg_count(), before, "no new mbuf needed");
        assert_eq!(c.to_vec_for_test(), b"HDR:payload");
    }

    #[test]
    fn prepend_allocates_when_no_space() {
        let mut m = meter();
        let mut c = MbufChain::new();
        c.append_bytes(&[9u8; MLEN], &mut m);
        c.prepend_bytes(b"hdr", &mut m);
        let flat = c.to_vec_for_test();
        assert_eq!(&flat[..3], b"hdr");
        assert_eq!(c.len(), MLEN + 3);
    }

    #[test]
    fn prepend_header_larger_than_mlen() {
        let mut m = meter();
        let mut c = MbufChain::from_slice(b"body", &mut m);
        let hdr: Vec<u8> = (0..300).map(|i| (i % 251) as u8).collect();
        c.prepend_bytes(&hdr, &mut m);
        let flat = c.to_vec_for_test();
        assert_eq!(&flat[..300], &hdr[..]);
        assert_eq!(&flat[300..], b"body");
    }

    #[test]
    fn append_chain_moves_segments() {
        let mut m = meter();
        let mut a = MbufChain::from_slice(b"one", &mut m);
        let b = MbufChain::from_slice(b"two", &mut m);
        let before = m.bytes();
        a.append_chain(b);
        assert_eq!(m.bytes(), before, "m_cat copies nothing");
        assert_eq!(a.to_vec_for_test(), b"onetwo");
    }

    #[test]
    fn share_range_shares_clusters() {
        let mut m = meter();
        let data: Vec<u8> = (0..8192u32).map(|i| (i % 256) as u8).collect();
        let c = MbufChain::from_slice(&data, &mut m);
        m.take();
        let shared = c.share_range(100, 4000, &mut m);
        assert_eq!(shared.to_vec_for_test(), &data[100..4100]);
        assert_eq!(m.bytes(), 0, "cluster shares copy nothing");
        assert!(shared.mbufs().any(|b| b.is_shared_cluster()));
    }

    #[test]
    fn share_range_copies_small_mbufs() {
        let mut m = meter();
        let c = MbufChain::from_slice(b"tiny message", &mut m);
        m.take();
        let shared = c.share_range(5, 7, &mut m);
        assert_eq!(shared.to_vec_for_test(), b"message");
        assert_eq!(m.bytes(), 7, "small mbuf bytes are copied");
    }

    #[test]
    fn share_whole_and_empty() {
        let mut m = meter();
        let c = MbufChain::from_slice(b"abcdef", &mut m);
        assert_eq!(c.share_range(0, 6, &mut m).to_vec_for_test(), b"abcdef");
        assert_eq!(c.share_range(3, 0, &mut m).len(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn share_range_oob_panics() {
        let mut m = meter();
        let c = MbufChain::from_slice(b"abc", &mut m);
        let _ = c.share_range(1, 3, &mut m);
    }

    #[test]
    fn split_off_basic() {
        let mut m = meter();
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 256) as u8).collect();
        let mut c = MbufChain::from_slice(&data, &mut m);
        let tail = c.split_off(1234, &mut m);
        assert_eq!(c.len(), 1234);
        assert_eq!(tail.len(), 5000 - 1234);
        assert_eq!(c.to_vec_for_test(), &data[..1234]);
        assert_eq!(tail.to_vec_for_test(), &data[1234..]);
    }

    #[test]
    fn split_off_at_ends() {
        let mut m = meter();
        let mut c = MbufChain::from_slice(b"abcdef", &mut m);
        let tail = c.split_off(6, &mut m);
        assert!(tail.is_empty());
        assert_eq!(c.len(), 6);
        let tail = c.split_off(0, &mut m);
        assert!(c.is_empty());
        assert_eq!(tail.to_vec_for_test(), b"abcdef");
    }

    #[test]
    fn split_off_shares_straddling_cluster() {
        let mut m = meter();
        let data = vec![3u8; 4096];
        let mut c = MbufChain::from_slice(&data, &mut m);
        m.take();
        // 1000 is inside the first cluster.
        let tail = c.split_off(1000, &mut m);
        assert_eq!(m.bytes(), 0, "cluster split shares, never copies");
        assert_eq!(c.len() + tail.len(), 4096);
    }

    #[test]
    fn trim_front_and_back() {
        let mut m = meter();
        let data: Vec<u8> = (0..3000u32).map(|i| (i % 256) as u8).collect();
        let mut c = MbufChain::from_slice(&data, &mut m);
        c.trim_front(100);
        c.trim_back(200);
        assert_eq!(c.len(), 2700);
        assert_eq!(c.to_vec_for_test(), &data[100..2800]);
        c.trim_front(10_000);
        assert!(c.is_empty());
        assert_eq!(c.seg_count(), 0);
    }

    #[test]
    fn copy_out_ranges() {
        let mut m = meter();
        let data: Vec<u8> = (0..4000u32).map(|i| (i * 7 % 256) as u8).collect();
        let c = MbufChain::from_slice(&data, &mut m);
        let mut buf = vec![0u8; 500];
        c.copy_out(1700, &mut buf, &mut m);
        assert_eq!(buf, &data[1700..2200]);
    }

    #[test]
    fn pullup_makes_front_contiguous() {
        let mut m = meter();
        let mut c = MbufChain::new();
        // Build a fragmented front out of several appends + chain cats.
        c.append_bytes(b"ab", &mut m);
        let mut rest = MbufChain::from_slice(&vec![5u8; 3000], &mut m);
        let tail = rest.split_off(1500, &mut m);
        c.append_chain(rest);
        c.append_chain(tail);
        let flat_before = c.to_vec_for_test();
        c.pullup(200, &mut m);
        assert_eq!(c.to_vec_for_test(), flat_before, "contents preserved");
        assert!(c.mbufs().next().unwrap().len() >= 200);
    }

    #[test]
    fn pullup_noop_when_contiguous() {
        let mut m = meter();
        let mut c = MbufChain::from_slice(b"0123456789", &mut m);
        m.take();
        c.pullup(4, &mut m);
        assert_eq!(m.bytes(), 0);
    }

    #[test]
    fn leading_space_reserved_chain_is_empty() {
        let c = MbufChain::with_leading_space(64);
        assert!(c.is_empty());
        assert_eq!(c.segments().count(), 0, "empty mbufs are skipped");
        assert_eq!(c.seg_count(), 1);
    }
}
