//! A small-capacity inline deque.
//!
//! `MbufChain` originally kept its segments in a `VecDeque`, which costs
//! one heap allocation per chain — and NFS RPC processing creates and
//! destroys chains constantly (request build, header prepend, fragment
//! share, reassembly stitch). Real 4.3BSD pays nothing comparable: an
//! mbuf chain is an intrusive linked list through the mbufs themselves.
//!
//! [`InlineDeque`] stores up to `N` elements in a fixed ring inside the
//! struct, so typical chains (header mbuf plus a handful of clusters —
//! an 8 KB NFS read is 4 clusters) never touch the allocator for their
//! spine. Chains longer than `N` spill *all* elements into a boxed
//! `VecDeque` and stay spilled; correctness never depends on which mode
//! a deque is in.

use std::collections::VecDeque;

/// A double-ended queue holding up to `N` elements inline.
pub struct InlineDeque<T, const N: usize> {
    /// Ring storage; the slot for logical index `i` is `(head + i) % N`.
    buf: [Option<T>; N],
    head: usize,
    len: usize,
    /// Once the inline ring overflows, every element lives here instead.
    /// Boxed on purpose: the spill is the rare case, and one pointer
    /// keeps the inline variant — which travels inside every queued
    /// event — as small as possible.
    #[allow(clippy::box_collection)]
    spill: Option<Box<VecDeque<T>>>,
}

impl<T, const N: usize> InlineDeque<T, N> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        InlineDeque {
            buf: std::array::from_fn(|_| None),
            head: 0,
            len: 0,
            spill: None,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    /// Whether the deque is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements have spilled to the heap (diagnostics).
    pub fn is_spilled(&self) -> bool {
        self.spill.is_some()
    }

    #[inline]
    fn slot(&self, i: usize) -> usize {
        debug_assert!(i < self.len);
        (self.head + i) % N
    }

    /// Moves every inline element into a heap deque.
    fn spill_all(&mut self) {
        debug_assert!(self.spill.is_none());
        let mut v = VecDeque::with_capacity(N * 2);
        for i in 0..self.len {
            let s = (self.head + i) % N;
            v.push_back(self.buf[s].take().expect("occupied slot"));
        }
        self.head = 0;
        self.len = 0;
        self.spill = Some(Box::new(v));
    }

    /// Appends an element at the back.
    pub fn push_back(&mut self, t: T) {
        if self.spill.is_none() && self.len == N {
            self.spill_all();
        }
        match &mut self.spill {
            Some(s) => s.push_back(t),
            None => {
                let s = (self.head + self.len) % N;
                debug_assert!(self.buf[s].is_none());
                self.buf[s] = Some(t);
                self.len += 1;
            }
        }
    }

    /// Inserts an element at the front.
    pub fn push_front(&mut self, t: T) {
        if self.spill.is_none() && self.len == N {
            self.spill_all();
        }
        match &mut self.spill {
            Some(s) => s.push_front(t),
            None => {
                self.head = (self.head + N - 1) % N;
                debug_assert!(self.buf[self.head].is_none());
                self.buf[self.head] = Some(t);
                self.len += 1;
            }
        }
    }

    /// Removes and returns the front element.
    pub fn pop_front(&mut self) -> Option<T> {
        match &mut self.spill {
            Some(s) => s.pop_front(),
            None => {
                if self.len == 0 {
                    return None;
                }
                let t = self.buf[self.head].take();
                debug_assert!(t.is_some());
                self.head = (self.head + 1) % N;
                self.len -= 1;
                t
            }
        }
    }

    /// Removes and returns the back element.
    pub fn pop_back(&mut self) -> Option<T> {
        match &mut self.spill {
            Some(s) => s.pop_back(),
            None => {
                if self.len == 0 {
                    return None;
                }
                let s = (self.head + self.len - 1) % N;
                let t = self.buf[s].take();
                debug_assert!(t.is_some());
                self.len -= 1;
                t
            }
        }
    }

    /// The front element.
    pub fn front(&self) -> Option<&T> {
        self.get(0)
    }

    /// The front element, mutably.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.get_mut(0)
    }

    /// The back element.
    pub fn back(&self) -> Option<&T> {
        match self.len() {
            0 => None,
            n => self.get(n - 1),
        }
    }

    /// The back element, mutably.
    pub fn back_mut(&mut self) -> Option<&mut T> {
        match self.len() {
            0 => None,
            n => self.get_mut(n - 1),
        }
    }

    /// The element at logical index `i`.
    pub fn get(&self, i: usize) -> Option<&T> {
        match &self.spill {
            Some(s) => s.get(i),
            None => {
                if i < self.len {
                    self.buf[(self.head + i) % N].as_ref()
                } else {
                    None
                }
            }
        }
    }

    /// The element at logical index `i`, mutably.
    pub fn get_mut(&mut self, i: usize) -> Option<&mut T> {
        match &mut self.spill {
            Some(s) => s.get_mut(i),
            None => {
                if i < self.len {
                    self.buf[(self.head + i) % N].as_mut()
                } else {
                    None
                }
            }
        }
    }

    /// Iterates front to back.
    pub fn iter(&self) -> Iter<'_, T, N> {
        Iter { dq: self, i: 0 }
    }

    /// Keeps only the elements `f` accepts, preserving order.
    pub fn retain<F: FnMut(&T) -> bool>(&mut self, mut f: F) {
        match &mut self.spill {
            Some(s) => s.retain(|t| f(t)),
            None => {
                let mut kept = 0;
                for i in 0..self.len {
                    let t = self.buf[self.slot(i)].take().expect("occupied slot");
                    if f(&t) {
                        self.buf[(self.head + kept) % N] = Some(t);
                        kept += 1;
                    }
                }
                self.len = kept;
            }
        }
    }

    /// Removes every element (dropping them) without releasing spill
    /// storage, so a pooled deque keeps its heap capacity.
    pub fn clear(&mut self) {
        match &mut self.spill {
            Some(s) => s.clear(),
            None => {
                for i in 0..self.len {
                    let s = (self.head + i) % N;
                    self.buf[s] = None;
                }
                self.len = 0;
                self.head = 0;
            }
        }
    }
}

impl<T, const N: usize> Default for InlineDeque<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Clone, const N: usize> Clone for InlineDeque<T, N> {
    fn clone(&self) -> Self {
        let mut out = InlineDeque::new();
        for t in self.iter() {
            out.push_back(t.clone());
        }
        out
    }
}

impl<T, const N: usize> Extend<T> for InlineDeque<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, it: I) {
        for t in it {
            self.push_back(t);
        }
    }
}

/// Borrowing front-to-back iterator.
pub struct Iter<'a, T, const N: usize> {
    dq: &'a InlineDeque<T, N>,
    i: usize,
}

impl<'a, T, const N: usize> Iterator for Iter<'a, T, N> {
    type Item = &'a T;
    fn next(&mut self) -> Option<&'a T> {
        let t = self.dq.get(self.i)?;
        self.i += 1;
        Some(t)
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineDeque<T, N> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T, N>;
    fn into_iter(self) -> Iter<'a, T, N> {
        self.iter()
    }
}

/// Owning front-to-back iterator; double-ended because chain surgery
/// walks segment lists from the back.
pub struct IntoIter<T, const N: usize> {
    dq: InlineDeque<T, N>,
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        self.dq.pop_front()
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.dq.len();
        (n, Some(n))
    }
}

impl<T, const N: usize> DoubleEndedIterator for IntoIter<T, N> {
    fn next_back(&mut self) -> Option<T> {
        self.dq.pop_back()
    }
}

impl<T, const N: usize> ExactSizeIterator for IntoIter<T, N> {}

impl<T, const N: usize> IntoIterator for InlineDeque<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        IntoIter { dq: self }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    #[test]
    fn basic_fifo_within_inline_capacity() {
        let mut d: InlineDeque<u32, 4> = InlineDeque::new();
        d.push_back(1);
        d.push_back(2);
        d.push_front(0);
        assert!(!d.is_spilled());
        assert_eq!(d.len(), 3);
        assert_eq!(d.front(), Some(&0));
        assert_eq!(d.back(), Some(&2));
        assert_eq!(d.pop_front(), Some(0));
        assert_eq!(d.pop_back(), Some(2));
        assert_eq!(d.pop_front(), Some(1));
        assert_eq!(d.pop_front(), None);
    }

    #[test]
    fn spills_and_keeps_order() {
        let mut d: InlineDeque<u32, 4> = InlineDeque::new();
        for i in 0..10 {
            d.push_back(i);
        }
        assert!(d.is_spilled());
        let got: Vec<u32> = d.into_iter().collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn matches_vecdeque_reference_on_random_ops() {
        let mut rng = 0x1234_5678_u64;
        let mut next = move || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        let mut d: InlineDeque<u64, 3> = InlineDeque::new();
        let mut v: VecDeque<u64> = VecDeque::new();
        for step in 0..2000 {
            match next() % 7 {
                0 | 1 => {
                    d.push_back(step);
                    v.push_back(step);
                }
                2 => {
                    d.push_front(step);
                    v.push_front(step);
                }
                3 => assert_eq!(d.pop_front(), v.pop_front()),
                4 => assert_eq!(d.pop_back(), v.pop_back()),
                5 => {
                    let keep = next() % 2 == 0;
                    d.retain(|x| (*x % 2 == 0) == keep);
                    v.retain(|x| (*x % 2 == 0) == keep);
                }
                _ => {
                    assert_eq!(d.front(), v.front());
                    assert_eq!(d.back(), v.back());
                    assert_eq!(d.len(), v.len());
                }
            }
            let a: Vec<u64> = d.iter().copied().collect();
            let b: Vec<u64> = v.iter().copied().collect();
            assert_eq!(a, b, "diverged at step {step}");
        }
    }

    #[test]
    fn reverse_iteration() {
        let mut d: InlineDeque<u32, 4> = InlineDeque::new();
        for i in 0..6 {
            d.push_back(i);
        }
        let rev: Vec<u32> = d.into_iter().rev().collect();
        assert_eq!(rev, vec![5, 4, 3, 2, 1, 0]);
    }

    #[test]
    fn clear_resets_without_unspilling_allocation() {
        let mut d: InlineDeque<u32, 2> = InlineDeque::new();
        for i in 0..5 {
            d.push_back(i);
        }
        assert!(d.is_spilled());
        d.clear();
        assert!(d.is_empty());
        d.push_back(9);
        assert_eq!(d.pop_front(), Some(9));
    }

    #[test]
    fn wraparound_ring_indices() {
        let mut d: InlineDeque<u32, 3> = InlineDeque::new();
        d.push_back(1);
        d.push_back(2);
        assert_eq!(d.pop_front(), Some(1));
        d.push_back(3);
        d.push_back(4); // wraps the ring
        assert!(!d.is_spilled());
        assert_eq!(d.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
    }
}
