//! Property tests: `MemFs` against a simple reference model.

use std::collections::HashMap;

use proptest::prelude::*;
use renofs_sim::SimTime;
use renofs_vfs::{FsError, MemFs};

/// Operations the model covers.
#[derive(Clone, Debug)]
enum Op {
    Create(u8),
    Remove(u8),
    Write(u8, u16, Vec<u8>),
    Read(u8, u16, u16),
    Truncate(u8, u16),
    Rename(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Create),
        any::<u8>().prop_map(Op::Remove),
        (
            any::<u8>(),
            any::<u16>(),
            proptest::collection::vec(any::<u8>(), 0..600)
        )
            .prop_map(|(n, off, data)| Op::Write(n, off % 4096, data)),
        (any::<u8>(), any::<u16>(), any::<u16>()).prop_map(|(n, off, len)| Op::Read(
            n,
            off % 8192,
            len % 2048
        )),
        (any::<u8>(), any::<u16>()).prop_map(|(n, sz)| Op::Truncate(n, sz % 4096)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Rename(a, b)),
    ]
}

fn name(n: u8) -> String {
    format!("file{:02}", n % 12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any sequence of create/remove/write/read/truncate/rename agrees
    /// byte-for-byte with a HashMap<String, Vec<u8>> reference model.
    #[test]
    fn memfs_matches_reference_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let t = SimTime::from_secs(1);
        let mut fs = MemFs::new(t);
        let root = fs.root();
        let mut model: HashMap<String, Vec<u8>> = HashMap::new();
        for op in ops {
            match op {
                Op::Create(n) => {
                    let nm = name(n);
                    let r = fs.create(root, &nm, 0o644, t);
                    prop_assert!(r.is_ok());
                    // NFS CREATE truncates an existing regular file.
                    model.insert(nm, Vec::new());
                }
                Op::Remove(n) => {
                    let nm = name(n);
                    let r = fs.remove(root, &nm, t);
                    match model.remove(&nm) {
                        Some(_) => prop_assert!(r.is_ok()),
                        None => prop_assert_eq!(r, Err(FsError::NoEnt)),
                    }
                }
                Op::Write(n, off, data) => {
                    let nm = name(n);
                    match fs.lookup(root, &nm) {
                        Ok(id) => {
                            fs.write(id, off as u32, &data, t).unwrap();
                            let m = model.get_mut(&nm).expect("model in sync");
                            let end = off as usize + data.len();
                            if m.len() < end {
                                m.resize(end, 0);
                            }
                            m[off as usize..end].copy_from_slice(&data);
                        }
                        Err(e) => {
                            prop_assert_eq!(e, FsError::NoEnt);
                            prop_assert!(!model.contains_key(&nm));
                        }
                    }
                }
                Op::Read(n, off, len) => {
                    let nm = name(n);
                    if let Ok(id) = fs.lookup(root, &nm) {
                        let got = fs.read(id, off as u32, len as u32, t).unwrap();
                        let m = &model[&nm];
                        let lo = (off as usize).min(m.len());
                        let hi = (off as usize + len as usize).min(m.len());
                        prop_assert_eq!(&got, &m[lo..hi]);
                    }
                }
                Op::Truncate(n, sz) => {
                    let nm = name(n);
                    if let Ok(id) = fs.lookup(root, &nm) {
                        fs.setattr(id, Some(sz as u32), None, None, None, t).unwrap();
                        model.get_mut(&nm).expect("model in sync").resize(sz as usize, 0);
                    }
                }
                Op::Rename(a, b) => {
                    let (from, to) = (name(a), name(b));
                    if from == to {
                        continue;
                    }
                    let r = fs.rename(root, &from, root, &to, t);
                    match model.remove(&from) {
                        Some(data) => {
                            prop_assert!(r.is_ok());
                            model.insert(to, data);
                        }
                        None => prop_assert!(r.is_err()),
                    }
                }
            }
        }
        // Final state agreement: every model file readable with exact
        // contents, every model-absent name NoEnt.
        for (nm, data) in &model {
            let id = fs.lookup(root, nm).unwrap();
            let got = fs.read(id, 0, data.len() as u32 + 10, t).unwrap();
            prop_assert_eq!(&got, data);
            prop_assert_eq!(fs.getattr(id).unwrap().size as usize, data.len());
        }
        for n in 0..12u8 {
            let nm = name(n);
            if !model.contains_key(&nm) {
                prop_assert_eq!(fs.lookup(root, &nm), Err(FsError::NoEnt));
            }
        }
    }
}
