//! An in-memory Unix filesystem.
//!
//! Serves as the server's exported volume (definitive file contents; the
//! host model charges RD53 disk time separately) and as the local-disk
//! baseline in the Create-Delete benchmark. Semantics follow what the
//! NFS v2 procedures need: inode generations for stale-handle detection,
//! hard links, rename, and cookie-based directory reading.

use std::collections::BTreeMap;

use renofs_sim::SimTime;

use crate::types::{FileType, Vattr, BLOCK_SIZE};

/// Maximum component name length (Unix `MAXNAMLEN`).
pub const NAME_MAX: usize = 255;

/// An inode number within a [`MemFs`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct InodeId(pub u32);

/// Filesystem errors, mapping 1:1 onto NFS v2 status codes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsError {
    /// No such file or directory.
    NoEnt,
    /// Name already exists.
    Exist,
    /// Not a directory.
    NotDir,
    /// Is a directory.
    IsDir,
    /// Directory not empty.
    NotEmpty,
    /// Stale file handle (inode freed or generation mismatch).
    Stale,
    /// Name too long.
    NameTooLong,
    /// Out of space.
    NoSpace,
    /// Operation not permitted on this file type.
    Access,
}

/// Result alias.
pub type FsResult<T> = Result<T, FsError>;

/// One page of directory entries: `(cookie, name, inode)` triples plus
/// an end-of-directory flag.
pub type ReaddirPage = (Vec<(u32, String, InodeId)>, bool);

enum Kind {
    File(Vec<u8>),
    Dir(BTreeMap<String, InodeId>),
    Symlink(String),
}

struct Inode {
    kind: Kind,
    mode: u32,
    uid: u32,
    gid: u32,
    nlink: u32,
    atime: SimTime,
    mtime: SimTime,
    ctime: SimTime,
    gen: u32,
}

impl Inode {
    fn ftype(&self) -> FileType {
        match self.kind {
            Kind::File(_) => FileType::Regular,
            Kind::Dir(_) => FileType::Directory,
            Kind::Symlink(_) => FileType::Symlink,
        }
    }

    fn size(&self) -> u32 {
        match &self.kind {
            Kind::File(d) => d.len() as u32,
            Kind::Dir(entries) => {
                // Approximate on-disk directory size: 16 bytes + name per
                // entry, in whole 512-byte chunks.
                let raw: usize = entries.keys().map(|n| 16 + n.len()).sum::<usize>() + 32;
                (raw.div_ceil(512) * 512) as u32
            }
            Kind::Symlink(t) => t.len() as u32,
        }
    }
}

/// The filesystem.
pub struct MemFs {
    slots: Vec<Option<Inode>>,
    gen_memory: Vec<u32>,
    root: InodeId,
    capacity_bytes: u64,
    used_bytes: u64,
}

impl MemFs {
    /// Creates a filesystem with an empty root directory.
    pub fn new(now: SimTime) -> Self {
        Self::with_capacity(now, 64 * 1024 * 1024)
    }

    /// Creates a filesystem with the given data capacity in bytes
    /// (the testbed's RD53 held ~71 MB).
    pub fn with_capacity(now: SimTime, capacity_bytes: u64) -> Self {
        let root = Inode {
            kind: Kind::Dir(BTreeMap::new()),
            mode: 0o755,
            uid: 0,
            gid: 0,
            nlink: 2,
            atime: now,
            mtime: now,
            ctime: now,
            gen: 1,
        };
        MemFs {
            slots: vec![Some(root)],
            gen_memory: vec![1],
            root: InodeId(0),
            capacity_bytes,
            used_bytes: 0,
        }
    }

    /// The root directory.
    pub fn root(&self) -> InodeId {
        self.root
    }

    fn inode(&self, id: InodeId) -> FsResult<&Inode> {
        self.slots
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .ok_or(FsError::Stale)
    }

    fn inode_mut(&mut self, id: InodeId) -> FsResult<&mut Inode> {
        self.slots
            .get_mut(id.0 as usize)
            .and_then(|s| s.as_mut())
            .ok_or(FsError::Stale)
    }

    /// The inode's current generation (for file-handle construction).
    pub fn generation(&self, id: InodeId) -> FsResult<u32> {
        Ok(self.inode(id)?.gen)
    }

    /// Validates an `(inode, generation)` pair, the stale-handle check a
    /// stateless server performs on every request.
    pub fn check_handle(&self, id: InodeId, gen: u32) -> FsResult<()> {
        let ino = self.inode(id)?;
        if ino.gen != gen {
            return Err(FsError::Stale);
        }
        Ok(())
    }

    fn alloc(&mut self, inode: Inode) -> InodeId {
        for (i, slot) in self.slots.iter_mut().enumerate() {
            if slot.is_none() {
                let mut inode = inode;
                inode.gen = self.gen_memory[i] + 1;
                self.gen_memory[i] = inode.gen;
                *slot = Some(inode);
                return InodeId(i as u32);
            }
        }
        self.slots.push(Some(inode));
        self.gen_memory.push(1);
        InodeId((self.slots.len() - 1) as u32)
    }

    fn dir_entries(&self, dir: InodeId) -> FsResult<&BTreeMap<String, InodeId>> {
        match &self.inode(dir)?.kind {
            Kind::Dir(entries) => Ok(entries),
            _ => Err(FsError::NotDir),
        }
    }

    fn dir_entries_mut(&mut self, dir: InodeId) -> FsResult<&mut BTreeMap<String, InodeId>> {
        match &mut self.inode_mut(dir)?.kind {
            Kind::Dir(entries) => Ok(entries),
            _ => Err(FsError::NotDir),
        }
    }

    fn check_name(name: &str) -> FsResult<()> {
        if name.is_empty() || name.len() > NAME_MAX {
            return Err(FsError::NameTooLong);
        }
        if name == "." || name == ".." || name.contains('/') {
            return Err(FsError::Access);
        }
        Ok(())
    }

    /// Looks up one component under a directory.
    pub fn lookup(&self, dir: InodeId, name: &str) -> FsResult<InodeId> {
        self.dir_entries(dir)?
            .get(name)
            .copied()
            .ok_or(FsError::NoEnt)
    }

    /// Number of entries in a directory (for search-cost pricing).
    pub fn dir_len(&self, dir: InodeId) -> FsResult<usize> {
        Ok(self.dir_entries(dir)?.len())
    }

    /// File attributes.
    pub fn getattr(&self, id: InodeId) -> FsResult<Vattr> {
        let ino = self.inode(id)?;
        let size = ino.size();
        Ok(Vattr {
            ftype: ino.ftype(),
            mode: ino.mode,
            nlink: ino.nlink,
            uid: ino.uid,
            gid: ino.gid,
            size,
            blocksize: BLOCK_SIZE as u32,
            blocks: size.div_ceil(512),
            fsid: 1,
            fileid: id.0,
            atime: ino.atime,
            mtime: ino.mtime,
            ctime: ino.ctime,
        })
    }

    /// Sets attributes; `size` truncates or extends a regular file.
    pub fn setattr(
        &mut self,
        id: InodeId,
        size: Option<u32>,
        mode: Option<u32>,
        uid: Option<u32>,
        gid: Option<u32>,
        now: SimTime,
    ) -> FsResult<Vattr> {
        // Compute the byte delta first for space accounting.
        if let Some(sz) = size {
            let ino = self.inode(id)?;
            match &ino.kind {
                Kind::File(data) => {
                    let old = data.len() as u64;
                    let new = sz as u64;
                    if new > old {
                        self.charge_space(new - old)?;
                    } else {
                        self.used_bytes -= old - new;
                    }
                }
                Kind::Dir(_) => return Err(FsError::IsDir),
                Kind::Symlink(_) => return Err(FsError::Access),
            }
        }
        let ino = self.inode_mut(id)?;
        if let Some(sz) = size {
            if let Kind::File(data) = &mut ino.kind {
                data.resize(sz as usize, 0);
                ino.mtime = now;
            }
        }
        if let Some(m) = mode {
            ino.mode = m;
        }
        if let Some(u) = uid {
            ino.uid = u;
        }
        if let Some(g) = gid {
            ino.gid = g;
        }
        ino.ctime = now;
        self.getattr(id)
    }

    fn charge_space(&mut self, bytes: u64) -> FsResult<()> {
        if self.used_bytes + bytes > self.capacity_bytes {
            return Err(FsError::NoSpace);
        }
        self.used_bytes += bytes;
        Ok(())
    }

    /// Reads up to `len` bytes at `off`; short reads at EOF.
    pub fn read(&mut self, id: InodeId, off: u32, len: u32, now: SimTime) -> FsResult<Vec<u8>> {
        let mut out = Vec::new();
        self.read_into(id, off, len, now, &mut out)?;
        Ok(out)
    }

    /// [`MemFs::read`] into a caller-supplied buffer (cleared first), so
    /// per-RPC read paths can recycle one scratch vector instead of
    /// allocating a fresh `Vec` per call. Returns the bytes read.
    pub fn read_into(
        &mut self,
        id: InodeId,
        off: u32,
        len: u32,
        now: SimTime,
        out: &mut Vec<u8>,
    ) -> FsResult<usize> {
        out.clear();
        let ino = self.inode_mut(id)?;
        let data = match &ino.kind {
            Kind::File(d) => d,
            Kind::Dir(_) => return Err(FsError::IsDir),
            Kind::Symlink(_) => return Err(FsError::Access),
        };
        let off = off as usize;
        let end = (off + len as usize).min(data.len());
        if off < data.len() {
            out.extend_from_slice(&data[off..end]);
        }
        ino.atime = now;
        Ok(out.len())
    }

    /// Writes `src` at `off`, extending (zero-filled) as needed.
    pub fn write(&mut self, id: InodeId, off: u32, src: &[u8], now: SimTime) -> FsResult<Vattr> {
        let end = off as u64 + src.len() as u64;
        if end > u32::MAX as u64 {
            return Err(FsError::NoSpace);
        }
        {
            let ino = self.inode(id)?;
            let old = match &ino.kind {
                Kind::File(d) => d.len() as u64,
                Kind::Dir(_) => return Err(FsError::IsDir),
                Kind::Symlink(_) => return Err(FsError::Access),
            };
            if end > old {
                self.charge_space(end - old)?;
            }
        }
        let ino = self.inode_mut(id)?;
        if let Kind::File(data) = &mut ino.kind {
            if end as usize > data.len() {
                data.resize(end as usize, 0);
            }
            data[off as usize..end as usize].copy_from_slice(src);
            ino.mtime = now;
            ino.ctime = now;
        }
        self.getattr(id)
    }

    /// Creates a regular file. If the name exists as a regular file it is
    /// truncated (NFS v2 CREATE semantics for `open(O_CREAT|O_TRUNC)`).
    pub fn create(
        &mut self,
        dir: InodeId,
        name: &str,
        mode: u32,
        now: SimTime,
    ) -> FsResult<InodeId> {
        Self::check_name(name)?;
        if let Ok(existing) = self.lookup(dir, name) {
            match &self.inode(existing)?.kind {
                Kind::File(_) => {
                    self.setattr(existing, Some(0), None, None, None, now)?;
                    return Ok(existing);
                }
                _ => return Err(FsError::Exist),
            }
        }
        let id = self.alloc(Inode {
            kind: Kind::File(Vec::new()),
            mode,
            uid: 0,
            gid: 0,
            nlink: 1,
            atime: now,
            mtime: now,
            ctime: now,
            gen: 0,
        });
        self.dir_entries_mut(dir)?.insert(name.to_string(), id);
        let d = self.inode_mut(dir)?;
        d.mtime = now;
        d.ctime = now;
        Ok(id)
    }

    /// Creates a directory.
    pub fn mkdir(
        &mut self,
        dir: InodeId,
        name: &str,
        mode: u32,
        now: SimTime,
    ) -> FsResult<InodeId> {
        Self::check_name(name)?;
        if self.lookup(dir, name).is_ok() {
            return Err(FsError::Exist);
        }
        let id = self.alloc(Inode {
            kind: Kind::Dir(BTreeMap::new()),
            mode,
            uid: 0,
            gid: 0,
            nlink: 2,
            atime: now,
            mtime: now,
            ctime: now,
            gen: 0,
        });
        self.dir_entries_mut(dir)?.insert(name.to_string(), id);
        let d = self.inode_mut(dir)?;
        d.nlink += 1;
        d.mtime = now;
        d.ctime = now;
        Ok(id)
    }

    /// Creates a symbolic link.
    pub fn symlink(
        &mut self,
        dir: InodeId,
        name: &str,
        target: &str,
        now: SimTime,
    ) -> FsResult<InodeId> {
        Self::check_name(name)?;
        if self.lookup(dir, name).is_ok() {
            return Err(FsError::Exist);
        }
        let id = self.alloc(Inode {
            kind: Kind::Symlink(target.to_string()),
            mode: 0o777,
            uid: 0,
            gid: 0,
            nlink: 1,
            atime: now,
            mtime: now,
            ctime: now,
            gen: 0,
        });
        self.dir_entries_mut(dir)?.insert(name.to_string(), id);
        Ok(id)
    }

    /// Reads a symlink target.
    pub fn readlink(&self, id: InodeId) -> FsResult<String> {
        match &self.inode(id)?.kind {
            Kind::Symlink(t) => Ok(t.clone()),
            _ => Err(FsError::Access),
        }
    }

    /// Adds a hard link to a regular file.
    pub fn link(
        &mut self,
        target: InodeId,
        dir: InodeId,
        name: &str,
        now: SimTime,
    ) -> FsResult<()> {
        Self::check_name(name)?;
        if matches!(self.inode(target)?.kind, Kind::Dir(_)) {
            return Err(FsError::IsDir);
        }
        if self.lookup(dir, name).is_ok() {
            return Err(FsError::Exist);
        }
        self.dir_entries_mut(dir)?.insert(name.to_string(), target);
        let t = self.inode_mut(target)?;
        t.nlink += 1;
        t.ctime = now;
        let d = self.inode_mut(dir)?;
        d.mtime = now;
        Ok(())
    }

    /// Removes a non-directory entry, freeing the inode when its last
    /// link goes.
    pub fn remove(&mut self, dir: InodeId, name: &str, now: SimTime) -> FsResult<()> {
        let id = self.lookup(dir, name)?;
        if matches!(self.inode(id)?.kind, Kind::Dir(_)) {
            return Err(FsError::IsDir);
        }
        self.dir_entries_mut(dir)?.remove(name);
        let freed_bytes;
        {
            let ino = self.inode_mut(id)?;
            ino.nlink -= 1;
            ino.ctime = now;
            if ino.nlink == 0 {
                freed_bytes = match &ino.kind {
                    Kind::File(d) => d.len() as u64,
                    _ => 0,
                };
                self.slots[id.0 as usize] = None;
            } else {
                freed_bytes = 0;
            }
        }
        self.used_bytes -= freed_bytes;
        let d = self.inode_mut(dir)?;
        d.mtime = now;
        d.ctime = now;
        Ok(())
    }

    /// Removes an empty directory.
    pub fn rmdir(&mut self, dir: InodeId, name: &str, now: SimTime) -> FsResult<()> {
        let id = self.lookup(dir, name)?;
        match &self.inode(id)?.kind {
            Kind::Dir(entries) => {
                if !entries.is_empty() {
                    return Err(FsError::NotEmpty);
                }
            }
            _ => return Err(FsError::NotDir),
        }
        self.dir_entries_mut(dir)?.remove(name);
        self.slots[id.0 as usize] = None;
        let d = self.inode_mut(dir)?;
        d.nlink -= 1;
        d.mtime = now;
        d.ctime = now;
        Ok(())
    }

    /// Renames an entry, replacing a non-directory target if present.
    pub fn rename(
        &mut self,
        fdir: InodeId,
        fname: &str,
        tdir: InodeId,
        tname: &str,
        now: SimTime,
    ) -> FsResult<()> {
        Self::check_name(tname)?;
        let id = self.lookup(fdir, fname)?;
        if let Ok(existing) = self.lookup(tdir, tname) {
            if existing != id {
                // Unlink the displaced target (files only).
                self.remove(tdir, tname, now)?;
            }
        }
        self.dir_entries_mut(fdir)?.remove(fname);
        self.dir_entries_mut(tdir)?.insert(tname.to_string(), id);
        for d in [fdir, tdir] {
            let ino = self.inode_mut(d)?;
            ino.mtime = now;
            ino.ctime = now;
        }
        Ok(())
    }

    /// Reads directory entries starting after `cookie` (0 = from start).
    /// Returns `(entries, eof)`; each entry carries the cookie to resume
    /// after it.
    pub fn readdir(&self, dir: InodeId, cookie: u32, max_entries: usize) -> FsResult<ReaddirPage> {
        let entries = self.dir_entries(dir)?;
        let mut out = Vec::new();
        let mut index = 0u32;
        for (name, id) in entries.iter() {
            index += 1;
            if index <= cookie {
                continue;
            }
            if out.len() >= max_entries {
                return Ok((out, false));
            }
            out.push((index, name.clone(), *id));
        }
        Ok((out, true))
    }

    /// Filesystem statistics: `(block_size, total_blocks, free_blocks)`.
    pub fn statfs(&self) -> (u32, u32, u32) {
        let bs = BLOCK_SIZE as u32;
        let total = (self.capacity_bytes / BLOCK_SIZE as u64) as u32;
        let used = (self.used_bytes / BLOCK_SIZE as u64) as u32;
        (bs, total, total.saturating_sub(used))
    }

    /// Bytes currently stored in regular files.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Number of live inodes.
    pub fn live_inodes(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_secs(n)
    }

    fn fs() -> MemFs {
        MemFs::new(t(0))
    }

    #[test]
    fn create_lookup_read_write() {
        let mut fs = fs();
        let f = fs.create(fs.root(), "hello.txt", 0o644, t(1)).unwrap();
        assert_eq!(fs.lookup(fs.root(), "hello.txt").unwrap(), f);
        fs.write(f, 0, b"hello world", t(2)).unwrap();
        assert_eq!(fs.read(f, 0, 100, t(3)).unwrap(), b"hello world");
        assert_eq!(fs.read(f, 6, 5, t(3)).unwrap(), b"world");
        let a = fs.getattr(f).unwrap();
        assert_eq!(a.size, 11);
        assert_eq!(a.mtime, t(2));
        assert_eq!(a.ftype, FileType::Regular);
    }

    #[test]
    fn sparse_write_zero_fills() {
        let mut fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, t(1)).unwrap();
        fs.write(f, 100, b"xy", t(1)).unwrap();
        let data = fs.read(f, 0, 200, t(1)).unwrap();
        assert_eq!(data.len(), 102);
        assert!(data[..100].iter().all(|&b| b == 0));
        assert_eq!(&data[100..], b"xy");
    }

    #[test]
    fn read_past_eof_is_short() {
        let mut fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, t(1)).unwrap();
        fs.write(f, 0, b"abc", t(1)).unwrap();
        assert_eq!(fs.read(f, 2, 10, t(1)).unwrap(), b"c");
        assert!(fs.read(f, 10, 10, t(1)).unwrap().is_empty());
    }

    #[test]
    fn create_existing_truncates() {
        let mut fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, t(1)).unwrap();
        fs.write(f, 0, b"data", t(1)).unwrap();
        let f2 = fs.create(fs.root(), "f", 0o644, t(2)).unwrap();
        assert_eq!(f, f2);
        assert_eq!(fs.getattr(f).unwrap().size, 0);
    }

    #[test]
    fn mkdir_and_nested_paths() {
        let mut fs = fs();
        let d1 = fs.mkdir(fs.root(), "usr", 0o755, t(1)).unwrap();
        let d2 = fs.mkdir(d1, "bin", 0o755, t(1)).unwrap();
        let f = fs.create(d2, "cc", 0o755, t(1)).unwrap();
        assert_eq!(
            fs.lookup(
                fs.lookup(fs.lookup(fs.root(), "usr").unwrap(), "bin")
                    .unwrap(),
                "cc"
            )
            .unwrap(),
            f
        );
        assert_eq!(fs.getattr(d1).unwrap().ftype, FileType::Directory);
        assert_eq!(fs.getattr(fs.root()).unwrap().nlink, 3, "root + usr");
    }

    #[test]
    fn remove_frees_inode_and_detects_stale() {
        let mut fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, t(1)).unwrap();
        let gen = fs.generation(f).unwrap();
        fs.check_handle(f, gen).unwrap();
        fs.remove(fs.root(), "f", t(2)).unwrap();
        assert_eq!(fs.check_handle(f, gen), Err(FsError::Stale));
        assert_eq!(fs.lookup(fs.root(), "f"), Err(FsError::NoEnt));
    }

    #[test]
    fn inode_reuse_bumps_generation() {
        let mut fs = fs();
        let f1 = fs.create(fs.root(), "a", 0o644, t(1)).unwrap();
        let g1 = fs.generation(f1).unwrap();
        fs.remove(fs.root(), "a", t(2)).unwrap();
        let f2 = fs.create(fs.root(), "b", 0o644, t(3)).unwrap();
        assert_eq!(f1, f2, "slot reused");
        assert!(fs.generation(f2).unwrap() > g1, "generation bumped");
        assert_eq!(fs.check_handle(f2, g1), Err(FsError::Stale));
    }

    #[test]
    fn hard_links_share_data() {
        let mut fs = fs();
        let f = fs.create(fs.root(), "orig", 0o644, t(1)).unwrap();
        fs.write(f, 0, b"shared", t(1)).unwrap();
        fs.link(f, fs.root(), "alias", t(2)).unwrap();
        assert_eq!(fs.getattr(f).unwrap().nlink, 2);
        fs.remove(fs.root(), "orig", t(3)).unwrap();
        let via_alias = fs.lookup(fs.root(), "alias").unwrap();
        assert_eq!(fs.read(via_alias, 0, 10, t(3)).unwrap(), b"shared");
        fs.remove(fs.root(), "alias", t(4)).unwrap();
        assert!(fs.check_handle(f, 0).is_err());
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = fs();
        let d = fs.mkdir(fs.root(), "d", 0o755, t(1)).unwrap();
        fs.create(d, "f", 0o644, t(1)).unwrap();
        assert_eq!(fs.rmdir(fs.root(), "d", t(2)), Err(FsError::NotEmpty));
        fs.remove(d, "f", t(2)).unwrap();
        fs.rmdir(fs.root(), "d", t(3)).unwrap();
        assert_eq!(fs.lookup(fs.root(), "d"), Err(FsError::NoEnt));
    }

    #[test]
    fn rename_moves_and_replaces() {
        let mut fs = fs();
        let d1 = fs.mkdir(fs.root(), "src", 0o755, t(1)).unwrap();
        let d2 = fs.mkdir(fs.root(), "dst", 0o755, t(1)).unwrap();
        let f = fs.create(d1, "file", 0o644, t(1)).unwrap();
        fs.write(f, 0, b"payload", t(1)).unwrap();
        let victim = fs.create(d2, "file2", 0o644, t(1)).unwrap();
        fs.rename(d1, "file", d2, "file2", t(2)).unwrap();
        assert_eq!(fs.lookup(d1, "file"), Err(FsError::NoEnt));
        assert_eq!(fs.lookup(d2, "file2").unwrap(), f);
        assert!(
            fs.check_handle(victim, 0).is_err(),
            "displaced target freed"
        );
    }

    #[test]
    fn symlink_round_trip() {
        let mut fs = fs();
        let l = fs.symlink(fs.root(), "ln", "/usr/bin/cc", t(1)).unwrap();
        assert_eq!(fs.readlink(l).unwrap(), "/usr/bin/cc");
        assert_eq!(fs.getattr(l).unwrap().ftype, FileType::Symlink);
        assert_eq!(fs.readlink(fs.root()), Err(FsError::Access));
    }

    #[test]
    fn readdir_pagination() {
        let mut fs = fs();
        for i in 0..10 {
            fs.create(fs.root(), &format!("f{i:02}"), 0o644, t(1))
                .unwrap();
        }
        let (page1, eof1) = fs.readdir(fs.root(), 0, 4).unwrap();
        assert_eq!(page1.len(), 4);
        assert!(!eof1);
        let (page2, _) = fs.readdir(fs.root(), page1.last().unwrap().0, 4).unwrap();
        assert_eq!(page2[0].1, "f04");
        let (page3, eof3) = fs.readdir(fs.root(), page2.last().unwrap().0, 10).unwrap();
        assert_eq!(page3.len(), 2);
        assert!(eof3);
        let all: Vec<String> = page1
            .iter()
            .chain(&page2)
            .chain(&page3)
            .map(|(_, n, _)| n.clone())
            .collect();
        assert_eq!(all, (0..10).map(|i| format!("f{i:02}")).collect::<Vec<_>>());
    }

    #[test]
    fn truncate_via_setattr() {
        let mut fs = fs();
        let f = fs.create(fs.root(), "f", 0o644, t(1)).unwrap();
        fs.write(f, 0, &[1u8; 1000], t(1)).unwrap();
        assert_eq!(fs.used_bytes(), 1000);
        fs.setattr(f, Some(100), None, None, None, t(2)).unwrap();
        assert_eq!(fs.getattr(f).unwrap().size, 100);
        assert_eq!(fs.used_bytes(), 100);
        fs.setattr(f, Some(500), None, None, None, t(3)).unwrap();
        let data = fs.read(f, 0, 500, t(3)).unwrap();
        assert_eq!(&data[..100], &[1u8; 100][..]);
        assert!(data[100..].iter().all(|&b| b == 0), "extension zero-fills");
    }

    #[test]
    fn space_accounting_and_nospace() {
        let mut fs = MemFs::with_capacity(t(0), 10_000);
        let f = fs.create(fs.root(), "big", 0o644, t(1)).unwrap();
        fs.write(f, 0, &[0u8; 8000], t(1)).unwrap();
        assert_eq!(fs.write(f, 8000, &[0u8; 8000], t(1)), Err(FsError::NoSpace));
        fs.remove(fs.root(), "big", t(2)).unwrap();
        assert_eq!(fs.used_bytes(), 0);
    }

    #[test]
    fn name_validation() {
        let mut fs = fs();
        assert_eq!(
            fs.create(fs.root(), &"x".repeat(300), 0o644, t(1)),
            Err(FsError::NameTooLong)
        );
        assert_eq!(
            fs.create(fs.root(), "", 0o644, t(1)),
            Err(FsError::NameTooLong)
        );
        assert_eq!(
            fs.create(fs.root(), "a/b", 0o644, t(1)),
            Err(FsError::Access)
        );
        assert_eq!(fs.create(fs.root(), ".", 0o644, t(1)), Err(FsError::Access));
    }

    #[test]
    fn errors_on_wrong_types() {
        let mut fs = fs();
        let d = fs.mkdir(fs.root(), "d", 0o755, t(1)).unwrap();
        let f = fs.create(fs.root(), "f", 0o644, t(1)).unwrap();
        assert_eq!(fs.read(d, 0, 10, t(1)), Err(FsError::IsDir));
        assert_eq!(fs.write(d, 0, b"x", t(1)), Err(FsError::IsDir));
        assert_eq!(fs.lookup(f, "x"), Err(FsError::NotDir));
        assert_eq!(fs.remove(fs.root(), "d", t(1)), Err(FsError::IsDir));
        assert_eq!(fs.rmdir(fs.root(), "f", t(1)), Err(FsError::NotDir));
        assert_eq!(fs.mkdir(fs.root(), "f", 0o755, t(1)), Err(FsError::Exist));
    }

    #[test]
    fn statfs_reflects_usage() {
        let mut fs = MemFs::with_capacity(t(0), 1024 * 1024);
        let (bs, total, free0) = fs.statfs();
        assert_eq!(bs, BLOCK_SIZE as u32);
        assert_eq!(total, 128);
        let f = fs.create(fs.root(), "f", 0o644, t(1)).unwrap();
        fs.write(f, 0, &vec![0u8; 9 * BLOCK_SIZE], t(1)).unwrap();
        let (_, _, free1) = fs.statfs();
        assert!(free1 < free0);
    }
}
