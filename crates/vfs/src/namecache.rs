//! The VFS name-lookup cache.
//!
//! 4.3BSD Reno caches `(directory vnode, component name) -> vnode`
//! translations for names of **up to 31 characters** — a limit the
//! paper's appendix calls out because Nhfsstone's long generated file
//! names defeat exactly this cache. On the Modified Andrew Benchmark the
//! cache cut the client's lookup RPC count in half (Table 3), and on the
//! server it reduces directory search CPU (Graphs 8–9).

use std::collections::HashMap;

use crate::types::VnodeId;

/// Longest name the cache will hold (4.3BSD Reno's limit).
pub const NC_NAMEMAX: usize = 31;

/// Cumulative cache statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NameCacheStats {
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Lookups skipped because the name exceeds [`NC_NAMEMAX`].
    pub too_long: u64,
    /// Entries evicted by capacity.
    pub evictions: u64,
}

/// An LRU name-lookup cache.
///
/// # Examples
///
/// ```
/// use renofs_vfs::{NameCache, VnodeId};
///
/// let mut nc = NameCache::new(128);
/// nc.enter(VnodeId(1), "passwd", VnodeId(9));
/// assert_eq!(nc.lookup(VnodeId(1), "passwd"), Some(VnodeId(9)));
/// assert_eq!(nc.lookup(VnodeId(1), "shadow"), None);
/// ```
pub struct NameCache {
    enabled: bool,
    capacity: usize,
    map: HashMap<(VnodeId, String), (VnodeId, u64)>,
    clock: u64,
    stats: NameCacheStats,
}

impl NameCache {
    /// Creates a cache holding up to `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        NameCache {
            enabled: true,
            capacity: capacity.max(1),
            map: HashMap::new(),
            clock: 0,
            stats: NameCacheStats::default(),
        }
    }

    /// Disables the cache (for the Graphs 8–9 ablation); lookups always
    /// miss and entries are not stored.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.map.clear();
        }
    }

    /// Whether the cache is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Statistics so far.
    pub fn stats(&self) -> NameCacheStats {
        self.stats
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up a component name under a directory.
    pub fn lookup(&mut self, dir: VnodeId, name: &str) -> Option<VnodeId> {
        if !self.enabled {
            self.stats.misses += 1;
            return None;
        }
        if name.len() > NC_NAMEMAX {
            self.stats.too_long += 1;
            return None;
        }
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&(dir, name.to_string())) {
            Some((v, stamp)) => {
                *stamp = clock;
                self.stats.hits += 1;
                Some(*v)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Enters a translation. Over-long names are not cached.
    pub fn enter(&mut self, dir: VnodeId, name: &str, target: VnodeId) {
        if !self.enabled || name.len() > NC_NAMEMAX {
            return;
        }
        self.clock += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&(dir, name.to_string())) {
            // Evict the least recently used entry.
            if let Some(key) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&key);
                self.stats.evictions += 1;
            }
        }
        self.map
            .insert((dir, name.to_string()), (target, self.clock));
    }

    /// Removes one translation (on remove/rename/create collisions).
    pub fn invalidate(&mut self, dir: VnodeId, name: &str) {
        self.map.remove(&(dir, name.to_string()));
    }

    /// Purges every entry that maps to or from `vnode` (vnode recycled,
    /// directory changed wholesale).
    pub fn purge_vnode(&mut self, vnode: VnodeId) {
        self.map
            .retain(|(dir, _), (target, _)| *dir != vnode && *target != vnode);
    }

    /// Empties the cache.
    pub fn purge_all(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> VnodeId {
        VnodeId(n)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut nc = NameCache::new(16);
        nc.enter(v(1), "a", v(10));
        assert_eq!(nc.lookup(v(1), "a"), Some(v(10)));
        assert_eq!(nc.lookup(v(1), "b"), None);
        assert_eq!(nc.lookup(v(2), "a"), None, "keyed by directory too");
        let s = nc.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
    }

    #[test]
    fn long_names_bypass_cache() {
        let mut nc = NameCache::new(16);
        let long = "x".repeat(NC_NAMEMAX + 1);
        nc.enter(v(1), &long, v(10));
        assert_eq!(nc.lookup(v(1), &long), None);
        assert_eq!(nc.stats().too_long, 1);
        assert!(nc.is_empty(), "over-long names never stored");
        // Exactly 31 characters is cacheable.
        let ok = "y".repeat(NC_NAMEMAX);
        nc.enter(v(1), &ok, v(11));
        assert_eq!(nc.lookup(v(1), &ok), Some(v(11)));
    }

    #[test]
    fn lru_eviction() {
        let mut nc = NameCache::new(3);
        nc.enter(v(1), "a", v(10));
        nc.enter(v(1), "b", v(11));
        nc.enter(v(1), "c", v(12));
        // Touch "a" so "b" is the LRU.
        assert!(nc.lookup(v(1), "a").is_some());
        nc.enter(v(1), "d", v(13));
        assert_eq!(nc.len(), 3);
        assert_eq!(nc.lookup(v(1), "b"), None, "LRU entry evicted");
        assert!(nc.lookup(v(1), "a").is_some());
        assert_eq!(nc.stats().evictions, 1);
    }

    #[test]
    fn invalidate_and_purge() {
        let mut nc = NameCache::new(16);
        nc.enter(v(1), "a", v(10));
        nc.enter(v(1), "b", v(11));
        nc.enter(v(10), "sub", v(12));
        nc.invalidate(v(1), "a");
        assert_eq!(nc.lookup(v(1), "a"), None);
        // Purging vnode 10 removes entries where it is dir or target.
        nc.purge_vnode(v(10));
        assert_eq!(nc.lookup(v(10), "sub"), None);
        assert!(nc.lookup(v(1), "b").is_some(), "unrelated entries survive");
    }

    #[test]
    fn disabled_cache_never_hits() {
        let mut nc = NameCache::new(16);
        nc.enter(v(1), "a", v(10));
        nc.set_enabled(false);
        assert_eq!(nc.lookup(v(1), "a"), None);
        nc.enter(v(1), "b", v(11));
        nc.set_enabled(true);
        assert_eq!(nc.lookup(v(1), "b"), None, "nothing stored while off");
    }

    #[test]
    fn reenter_updates_target() {
        let mut nc = NameCache::new(16);
        nc.enter(v(1), "a", v(10));
        nc.enter(v(1), "a", v(20));
        assert_eq!(nc.lookup(v(1), "a"), Some(v(20)));
        assert_eq!(nc.len(), 1);
    }
}
