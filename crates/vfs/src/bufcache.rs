//! The block buffer cache with dirty-region tracking.
//!
//! Two details from the paper live here:
//!
//! 1. The Reno `buf` structure has extra fields recording the "dirty"
//!    region within a buffer (`b_dirtyoff`/`b_dirtyend`), so a client
//!    writing part of a block **does not need to pre-read the block from
//!    the server** — only the dirty region is pushed later.
//! 2. On the Reno server, cached buffers hang **directly off the vnode**,
//!    so searching for a file's block touches only that file's buffers;
//!    the paper conjectures Ultrix's remaining lookup-performance gap
//!    comes from costlier buffer-cache searches. [`CacheOrg`] prices both
//!    organizations in *search steps* for the CPU model.

use std::collections::HashMap;

use crate::types::{VnodeId, BLOCK_SIZE};

/// How the cache is searched, for CPU pricing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOrg {
    /// 4.3BSD Reno: buffers chained off each vnode — a search touches
    /// only that vnode's buffers.
    PerVnodeChains,
    /// The Ultrix model: a global search across all cached buffers.
    GlobalList,
}

/// One cached block.
#[derive(Clone, Debug)]
pub struct Buf {
    data: Vec<u8>,
    valid: bool,
    dirty: Option<(usize, usize)>,
}

impl Buf {
    /// An empty, invalid block (allocated for a fresh partial write).
    pub fn new_empty() -> Self {
        Buf {
            data: vec![0; BLOCK_SIZE],
            valid: false,
            dirty: None,
        }
    }

    /// A block whose full contents were read from the server/disk.
    pub fn new_valid(data: Vec<u8>) -> Self {
        let mut d = data;
        d.resize(BLOCK_SIZE, 0);
        Buf {
            data: d,
            valid: true,
            dirty: None,
        }
    }

    /// Whether the whole block's contents are valid.
    pub fn is_valid(&self) -> bool {
        self.valid
    }

    /// The dirty region, if any.
    pub fn dirty_range(&self) -> Option<(usize, usize)> {
        self.dirty
    }

    /// Whether the block holds unwritten changes.
    pub fn is_dirty(&self) -> bool {
        self.dirty.is_some()
    }

    /// Raw block contents (meaningful within valid/dirty regions).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Whether `[off, end)` can be served from this buffer: either the
    /// whole block is valid, or the range lies within the dirty region.
    pub fn covers(&self, off: usize, end: usize) -> bool {
        if self.valid {
            return end <= BLOCK_SIZE;
        }
        match self.dirty {
            Some((d0, d1)) => off >= d0 && end <= d1,
            None => false,
        }
    }

    /// Reads `[off, off+len)` if covered.
    pub fn read(&self, off: usize, len: usize) -> Option<&[u8]> {
        if self.covers(off, off + len) {
            Some(&self.data[off..off + len])
        } else {
            None
        }
    }

    /// Writes into the block, extending the dirty region.
    ///
    /// Matches the BSD rule: on an *invalid* block the new write must
    /// overlap or abut the existing dirty region (otherwise the block
    /// would record two disjoint dirty extents and the old one must be
    /// pushed first) — in that case `Err(())` is returned and the caller
    /// flushes before retrying.
    #[allow(clippy::result_unit_err)] // One failure mode: disjoint dirty extents.
    pub fn write(&mut self, off: usize, src: &[u8]) -> Result<(), ()> {
        let end = off + src.len();
        assert!(end <= BLOCK_SIZE, "write beyond block");
        if !self.valid {
            if let Some((d0, d1)) = self.dirty {
                let disjoint = end < d0 || off > d1;
                if disjoint {
                    return Err(());
                }
            }
        }
        self.data[off..end].copy_from_slice(src);
        self.dirty = Some(match self.dirty {
            Some((d0, d1)) => (d0.min(off), d1.max(end)),
            None => (off, end),
        });
        Ok(())
    }

    /// Marks the dirty region clean (after a successful push).
    pub fn clear_dirty(&mut self) {
        self.dirty = None;
    }

    /// Marks the whole block valid (after merging a server read under
    /// the dirty region).
    pub fn mark_valid(&mut self) {
        self.valid = true;
    }

    /// Overlays freshly read block contents *under* the dirty region:
    /// bytes inside the dirty region keep the local modifications.
    pub fn merge_read(&mut self, fresh: &[u8]) {
        let dirty = self.dirty;
        for (i, b) in fresh.iter().enumerate().take(BLOCK_SIZE) {
            let in_dirty = match dirty {
                Some((d0, d1)) => i >= d0 && i < d1,
                None => false,
            };
            if !in_dirty {
                self.data[i] = *b;
            }
        }
        self.valid = true;
    }
}

/// Cumulative statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct BufCacheStats {
    /// Block lookups that hit.
    pub hits: u64,
    /// Block lookups that missed.
    pub misses: u64,
    /// Blocks evicted.
    pub evictions: u64,
    /// Total search steps performed (the CPU-cost proxy).
    pub search_steps: u64,
}

/// The buffer cache.
///
/// # Examples
///
/// ```
/// use renofs_vfs::{Buf, BufCache, CacheOrg, VnodeId};
///
/// let mut bc = BufCache::new(CacheOrg::PerVnodeChains, 64);
/// bc.insert(VnodeId(1), 0, Buf::new_valid(vec![7; 100]));
/// let (buf, _steps) = bc.lookup(VnodeId(1), 0);
/// assert!(buf.is_some());
/// ```
pub struct BufCache {
    org: CacheOrg,
    capacity: usize,
    map: HashMap<(VnodeId, u64), (Buf, u64)>,
    clock: u64,
    ambient: u64,
    stats: BufCacheStats,
}

impl BufCache {
    /// Creates a cache of `capacity` blocks.
    pub fn new(org: CacheOrg, capacity: usize) -> Self {
        BufCache {
            org,
            capacity: capacity.max(1),
            map: HashMap::new(),
            clock: 0,
            ambient: 0,
            stats: BufCacheStats::default(),
        }
    }

    /// Declares `n` ambient resident blocks: buffers belonging to other
    /// files and past activity that a long-running server's cache holds.
    /// They cost search steps under [`CacheOrg::GlobalList`] but are
    /// invisible to per-vnode chains — the structural difference the
    /// paper credits for much of the Reno/Ultrix server gap.
    pub fn set_ambient(&mut self, n: usize) {
        self.ambient = n as u64;
    }

    /// The search organization.
    pub fn org(&self) -> CacheOrg {
        self.org
    }

    /// Statistics so far.
    pub fn stats(&self) -> BufCacheStats {
        self.stats
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn search_steps(&self, v: VnodeId) -> u64 {
        match self.org {
            CacheOrg::PerVnodeChains => self.map.keys().filter(|(kv, _)| *kv == v).count() as u64,
            CacheOrg::GlobalList => self.map.len() as u64 + self.ambient,
        }
        .max(1)
    }

    /// Looks up a block; returns the buffer (if cached) and the number of
    /// search steps the organization would have cost.
    pub fn lookup(&mut self, v: VnodeId, blk: u64) -> (Option<&mut Buf>, u64) {
        let steps = self.search_steps(v);
        self.stats.search_steps += steps;
        self.clock += 1;
        let clock = self.clock;
        match self.map.get_mut(&(v, blk)) {
            Some((buf, stamp)) => {
                *stamp = clock;
                self.stats.hits += 1;
                (Some(buf), steps)
            }
            None => {
                self.stats.misses += 1;
                (None, steps)
            }
        }
    }

    /// Inserts (or replaces) a block. If the cache is over capacity the
    /// least-recently-used block is evicted — clean blocks silently,
    /// dirty blocks returned so the caller can write them back.
    pub fn insert(&mut self, v: VnodeId, blk: u64, buf: Buf) -> Vec<(VnodeId, u64, Buf)> {
        self.clock += 1;
        self.map.insert((v, blk), (buf, self.clock));
        let mut writebacks = Vec::new();
        while self.map.len() > self.capacity {
            // Prefer the LRU clean block; fall back to the LRU dirty one.
            let victim = self
                .map
                .iter()
                .filter(|(k, (b, _))| !b.is_dirty() && **k != (v, blk))
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
                .or_else(|| {
                    self.map
                        .iter()
                        .filter(|(k, _)| **k != (v, blk))
                        .min_by_key(|(_, (_, stamp))| *stamp)
                        .map(|(k, _)| *k)
                });
            match victim {
                Some(k) => {
                    let (b, _) = self.map.remove(&k).expect("victim exists");
                    self.stats.evictions += 1;
                    if b.is_dirty() {
                        writebacks.push((k.0, k.1, b));
                    }
                }
                None => break,
            }
        }
        writebacks
    }

    /// Removes one block.
    pub fn remove(&mut self, v: VnodeId, blk: u64) -> Option<Buf> {
        self.map.remove(&(v, blk)).map(|(b, _)| b)
    }

    /// Drops every block of `v`, returning the dirty ones.
    pub fn purge_vnode(&mut self, v: VnodeId) -> Vec<(u64, Buf)> {
        let keys: Vec<(VnodeId, u64)> = self
            .map
            .keys()
            .filter(|(kv, _)| *kv == v)
            .copied()
            .collect();
        let mut dirty = Vec::new();
        for k in keys {
            let (b, _) = self.map.remove(&k).expect("key listed");
            if b.is_dirty() {
                dirty.push((k.1, b));
            }
        }
        dirty
    }

    /// Block numbers of `v` currently dirty, ascending.
    pub fn dirty_blocks(&self, v: VnodeId) -> Vec<u64> {
        let mut blks: Vec<u64> = self
            .map
            .iter()
            .filter(|((kv, _), (b, _))| *kv == v && b.is_dirty())
            .map(|((_, blk), _)| *blk)
            .collect();
        blks.sort_unstable();
        blks
    }

    /// Block numbers of `v` currently cached, ascending.
    pub fn cached_blocks(&self, v: VnodeId) -> Vec<u64> {
        let mut blks: Vec<u64> = self
            .map
            .keys()
            .filter(|(kv, _)| *kv == v)
            .map(|(_, blk)| *blk)
            .collect();
        blks.sort_unstable();
        blks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: u64) -> VnodeId {
        VnodeId(n)
    }

    #[test]
    fn partial_write_without_preread() {
        let mut b = Buf::new_empty();
        assert!(!b.is_valid());
        b.write(100, b"hello").unwrap();
        assert_eq!(b.dirty_range(), Some((100, 105)));
        assert_eq!(b.read(100, 5).unwrap(), b"hello");
        assert!(
            b.read(0, 10).is_none(),
            "outside dirty region of invalid block"
        );
    }

    #[test]
    fn contiguous_writes_extend_dirty_region() {
        let mut b = Buf::new_empty();
        b.write(100, &[1; 50]).unwrap();
        b.write(150, &[2; 50]).unwrap(); // abuts
        b.write(90, &[3; 20]).unwrap(); // overlaps
        assert_eq!(b.dirty_range(), Some((90, 200)));
    }

    #[test]
    fn disjoint_write_on_invalid_block_rejected() {
        let mut b = Buf::new_empty();
        b.write(0, &[1; 10]).unwrap();
        assert!(b.write(500, &[2; 10]).is_err(), "gap needs a push first");
        // After the push (clear_dirty), the write is accepted.
        b.clear_dirty();
        b.write(500, &[2; 10]).unwrap();
        assert_eq!(b.dirty_range(), Some((500, 510)));
    }

    #[test]
    fn valid_block_accepts_any_write() {
        let mut b = Buf::new_valid(vec![9; BLOCK_SIZE]);
        b.write(0, &[1; 10]).unwrap();
        b.write(4000, &[2; 10]).unwrap();
        assert_eq!(b.dirty_range(), Some((0, 4010)));
        assert_eq!(b.read(2000, 4).unwrap(), &[9, 9, 9, 9]);
    }

    #[test]
    fn merge_read_preserves_dirty_bytes() {
        let mut b = Buf::new_empty();
        b.write(10, &[7; 5]).unwrap();
        b.merge_read(&vec![1; BLOCK_SIZE]);
        assert!(b.is_valid());
        assert_eq!(b.read(10, 5).unwrap(), &[7; 5], "dirty bytes kept");
        assert_eq!(b.read(0, 5).unwrap(), &[1; 5], "fresh bytes filled in");
        assert!(b.is_dirty(), "dirty region still needs pushing");
    }

    #[test]
    fn cache_hit_miss_and_lru() {
        let mut bc = BufCache::new(CacheOrg::PerVnodeChains, 2);
        bc.insert(v(1), 0, Buf::new_valid(vec![0; 8]));
        bc.insert(v(1), 1, Buf::new_valid(vec![1; 8]));
        assert!(bc.lookup(v(1), 0).0.is_some());
        // Insert a third block: LRU (blk 1) is evicted.
        let wb = bc.insert(v(1), 2, Buf::new_valid(vec![2; 8]));
        assert!(wb.is_empty(), "clean eviction needs no writeback");
        assert!(bc.lookup(v(1), 1).0.is_none());
        assert!(bc.lookup(v(1), 0).0.is_some());
    }

    #[test]
    fn dirty_eviction_returns_writeback() {
        let mut bc = BufCache::new(CacheOrg::PerVnodeChains, 2);
        let mut dirty = Buf::new_empty();
        dirty.write(0, &[5; 100]).unwrap();
        bc.insert(v(1), 0, dirty);
        let mut dirty2 = Buf::new_empty();
        dirty2.write(0, &[6; 100]).unwrap();
        bc.insert(v(1), 1, dirty2);
        let wb = bc.insert(v(1), 2, Buf::new_valid(vec![0; 8]));
        assert_eq!(wb.len(), 1, "a dirty block had to be written back");
        assert_eq!(wb[0].0, v(1));
    }

    #[test]
    fn search_steps_differ_by_organization() {
        let mut reno = BufCache::new(CacheOrg::PerVnodeChains, 1000);
        let mut ultrix = BufCache::new(CacheOrg::GlobalList, 1000);
        // Many vnodes, few blocks each.
        for i in 0..100u64 {
            for blk in 0..3u64 {
                reno.insert(v(i), blk, Buf::new_valid(vec![0; 8]));
                ultrix.insert(v(i), blk, Buf::new_valid(vec![0; 8]));
            }
        }
        let (_, reno_steps) = reno.lookup(v(5), 1);
        let (_, ultrix_steps) = ultrix.lookup(v(5), 1);
        assert_eq!(reno_steps, 3, "per-vnode chain: only that file's bufs");
        assert_eq!(ultrix_steps, 300, "global search: every cached buf");
    }

    #[test]
    fn purge_vnode_returns_dirty() {
        let mut bc = BufCache::new(CacheOrg::PerVnodeChains, 100);
        bc.insert(v(1), 0, Buf::new_valid(vec![0; 8]));
        let mut d = Buf::new_empty();
        d.write(0, &[1; 10]).unwrap();
        bc.insert(v(1), 1, d);
        bc.insert(v(2), 0, Buf::new_valid(vec![0; 8]));
        let dirty = bc.purge_vnode(v(1));
        assert_eq!(dirty.len(), 1);
        assert_eq!(dirty[0].0, 1);
        assert_eq!(bc.cached_blocks(v(1)), Vec::<u64>::new());
        assert_eq!(bc.cached_blocks(v(2)), vec![0]);
    }

    #[test]
    fn dirty_blocks_listed_in_order() {
        let mut bc = BufCache::new(CacheOrg::PerVnodeChains, 100);
        for blk in [5u64, 1, 3] {
            let mut b = Buf::new_empty();
            b.write(0, &[1; 4]).unwrap();
            bc.insert(v(1), blk, b);
        }
        bc.insert(v(1), 2, Buf::new_valid(vec![0; 8]));
        assert_eq!(bc.dirty_blocks(v(1)), vec![1, 3, 5]);
    }

    #[test]
    #[should_panic(expected = "beyond block")]
    fn write_past_block_panics() {
        let mut b = Buf::new_empty();
        let _ = b.write(BLOCK_SIZE - 2, &[0; 4]);
    }
}
