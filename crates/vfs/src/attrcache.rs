//! The client attribute cache.
//!
//! File attributes are cached in the vnode and time out **five seconds**
//! after being updated from the server — the consistency level the paper
//! observed experimentally on SunOS clients as well. Cached-data
//! consistency hangs off the `mtime` field: whenever a fresh `getattr`
//! (or the attributes piggybacked on any reply) shows a changed mtime,
//! the client flushes that file's cached blocks.

use std::collections::HashMap;

use renofs_sim::{SimDuration, SimTime};

use crate::types::{Vattr, VnodeId};

/// Cumulative statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct AttrCacheStats {
    /// Lookups answered from cache.
    pub hits: u64,
    /// Lookups that missed or had expired.
    pub misses: u64,
}

/// Attribute cache with per-entry timeout.
///
/// # Examples
///
/// ```
/// use renofs_sim::{SimDuration, SimTime};
/// use renofs_vfs::{AttrCache, Vattr, VnodeId};
///
/// let mut ac = AttrCache::new(SimDuration::from_secs(5));
/// let t0 = SimTime::from_secs(100);
/// ac.put(VnodeId(1), Vattr::empty_file(1, t0), t0);
/// assert!(ac.get(VnodeId(1), t0 + SimDuration::from_secs(4)).is_some());
/// assert!(ac.get(VnodeId(1), t0 + SimDuration::from_secs(6)).is_none());
/// ```
pub struct AttrCache {
    timeout: SimDuration,
    map: HashMap<VnodeId, (Vattr, SimTime)>,
    stats: AttrCacheStats,
}

impl AttrCache {
    /// Creates a cache with the given entry lifetime (the paper's client
    /// uses 5 seconds).
    pub fn new(timeout: SimDuration) -> Self {
        AttrCache {
            timeout,
            map: HashMap::new(),
            stats: AttrCacheStats::default(),
        }
    }

    /// The configured timeout.
    pub fn timeout(&self) -> SimDuration {
        self.timeout
    }

    /// Statistics so far.
    pub fn stats(&self) -> AttrCacheStats {
        self.stats
    }

    /// Returns unexpired attributes.
    pub fn get(&mut self, v: VnodeId, now: SimTime) -> Option<Vattr> {
        match self.map.get(&v) {
            Some((attr, stored)) if now.since(*stored) < self.timeout => {
                self.stats.hits += 1;
                Some(*attr)
            }
            _ => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Peeks at cached attributes even if expired (used for the mtime
    /// comparison when fresh attributes arrive).
    pub fn peek(&self, v: VnodeId) -> Option<&Vattr> {
        self.map.get(&v).map(|(a, _)| a)
    }

    /// Stores attributes freshly obtained from the server.
    pub fn put(&mut self, v: VnodeId, attr: Vattr, now: SimTime) {
        self.map.insert(v, (attr, now));
    }

    /// Drops one entry.
    pub fn invalidate(&mut self, v: VnodeId) {
        self.map.remove(&v);
    }

    /// Drops everything.
    pub fn purge_all(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attr(fileid: u32, t: SimTime) -> Vattr {
        Vattr::empty_file(fileid, t)
    }

    #[test]
    fn entries_expire_after_timeout() {
        let mut ac = AttrCache::new(SimDuration::from_secs(5));
        let t0 = SimTime::from_secs(10);
        ac.put(VnodeId(1), attr(1, t0), t0);
        assert!(ac.get(VnodeId(1), t0).is_some());
        assert!(ac
            .get(VnodeId(1), t0 + SimDuration::from_millis(4999))
            .is_some());
        assert!(ac.get(VnodeId(1), t0 + SimDuration::from_secs(5)).is_none());
        let s = ac.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn put_refreshes_expiry() {
        let mut ac = AttrCache::new(SimDuration::from_secs(5));
        let t0 = SimTime::from_secs(10);
        ac.put(VnodeId(1), attr(1, t0), t0);
        let t1 = t0 + SimDuration::from_secs(4);
        ac.put(VnodeId(1), attr(1, t1), t1);
        assert!(ac.get(VnodeId(1), t0 + SimDuration::from_secs(8)).is_some());
    }

    #[test]
    fn peek_sees_expired_entries() {
        let mut ac = AttrCache::new(SimDuration::from_secs(5));
        let t0 = SimTime::from_secs(10);
        ac.put(VnodeId(1), attr(7, t0), t0);
        assert!(ac
            .get(VnodeId(1), t0 + SimDuration::from_secs(100))
            .is_none());
        assert_eq!(ac.peek(VnodeId(1)).unwrap().fileid, 7);
    }

    #[test]
    fn invalidate_removes() {
        let mut ac = AttrCache::new(SimDuration::from_secs(5));
        let t0 = SimTime::from_secs(10);
        ac.put(VnodeId(1), attr(1, t0), t0);
        ac.invalidate(VnodeId(1));
        assert!(ac.get(VnodeId(1), t0).is_none());
        assert!(ac.peek(VnodeId(1)).is_none());
    }
}
