//! The 4.3BSD Reno VFS substrate (Section 5 of the paper).
//!
//! Client-side caching is where the Reno NFS departs most from the Sun
//! reference port, and this crate implements the mechanisms the paper
//! credits for the differences in Tables 2–5 and Graphs 8–9:
//!
//! - [`NameCache`]: the VFS name-lookup cache (names up to 31 characters)
//!   that halves the client's lookup RPC count versus Ultrix, and on the
//!   server cuts directory search work;
//! - [`BufCache`]: the block cache, with the `buf` dirty-region fields
//!   (`b_dirtyoff`/`b_dirtyend`) that let partial-block writes proceed
//!   without pre-reading from the server, and with both buffer
//!   organizations — per-vnode chains (Reno) versus a global search
//!   (the Ultrix model) — priced in search steps for the CPU model;
//! - [`AttrCache`]: the 5-second file-attribute cache;
//! - [`MemFs`]: an in-memory Unix filesystem used as the server's
//!   exported volume and as the "Local" baseline of the Create-Delete
//!   benchmark.

pub mod attrcache;
pub mod bufcache;
pub mod memfs;
pub mod namecache;
pub mod types;

pub use attrcache::AttrCache;
pub use bufcache::{Buf, BufCache, CacheOrg};
pub use memfs::{FsError, FsResult, InodeId, MemFs};
pub use namecache::NameCache;
pub use types::{FileType, Vattr, VnodeId, BLOCK_SIZE};
