//! Shared VFS types.

use renofs_sim::SimTime;

/// The NFS v2 logical block size: reads and writes move blocks of up to
/// 8192 bytes, and the caches are organized around this unit.
pub const BLOCK_SIZE: usize = 8192;

/// A client- or server-side vnode identity token.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VnodeId(pub u64);

/// File types (NFS v2 `ftype`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileType {
    /// Regular file.
    Regular,
    /// Directory.
    Directory,
    /// Symbolic link.
    Symlink,
}

impl FileType {
    /// The NFS v2 wire value.
    pub fn to_wire(self) -> u32 {
        match self {
            FileType::Regular => 1,
            FileType::Directory => 2,
            FileType::Symlink => 5,
        }
    }

    /// Parses the NFS v2 wire value.
    pub fn from_wire(v: u32) -> Option<Self> {
        match v {
            1 => Some(FileType::Regular),
            2 => Some(FileType::Directory),
            5 => Some(FileType::Symlink),
            _ => None,
        }
    }
}

/// File attributes (the NFS v2 `fattr` structure, with simulation time).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Vattr {
    /// File type.
    pub ftype: FileType,
    /// Permission bits.
    pub mode: u32,
    /// Hard-link count.
    pub nlink: u32,
    /// Owner.
    pub uid: u32,
    /// Group.
    pub gid: u32,
    /// Size in bytes.
    pub size: u32,
    /// Preferred I/O size.
    pub blocksize: u32,
    /// Allocated 512-byte blocks.
    pub blocks: u32,
    /// Filesystem id.
    pub fsid: u32,
    /// File id (inode number).
    pub fileid: u32,
    /// Last access time.
    pub atime: SimTime,
    /// Last modification time — the field NFS cache consistency hangs on.
    pub mtime: SimTime,
    /// Last attribute change time.
    pub ctime: SimTime,
}

impl Vattr {
    /// A zeroed regular-file attribute set, for building defaults.
    pub fn empty_file(fileid: u32, now: SimTime) -> Self {
        Vattr {
            ftype: FileType::Regular,
            mode: 0o644,
            nlink: 1,
            uid: 0,
            gid: 0,
            size: 0,
            blocksize: BLOCK_SIZE as u32,
            blocks: 0,
            fsid: 1,
            fileid,
            atime: now,
            mtime: now,
            ctime: now,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_type_wire_round_trip() {
        for t in [FileType::Regular, FileType::Directory, FileType::Symlink] {
            assert_eq!(FileType::from_wire(t.to_wire()), Some(t));
        }
        assert_eq!(FileType::from_wire(99), None);
    }

    #[test]
    fn empty_file_attr_defaults() {
        let a = Vattr::empty_file(42, SimTime::from_secs(1));
        assert_eq!(a.fileid, 42);
        assert_eq!(a.size, 0);
        assert_eq!(a.ftype, FileType::Regular);
        assert_eq!(a.mtime, SimTime::from_secs(1));
    }
}
