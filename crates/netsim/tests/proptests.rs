//! Property tests: fragmentation/reassembly and checksum invariants.

use proptest::prelude::*;
use renofs_mbuf::{CopyMeter, MbufChain};
use renofs_netsim::topology::presets::{self, Background};
use renofs_netsim::{internet_checksum, Datagram, NetEvent, Network, ProtoHeader};
use renofs_sim::{EventQueue, SimTime};

fn run_network(net: &mut Network, out: renofs_netsim::NetOutput) -> Vec<Vec<u8>> {
    let mut q: EventQueue<NetEvent> = EventQueue::new();
    let mut delivered = Vec::new();
    let mut pending = out;
    loop {
        for (t, e) in pending.events.drain(..) {
            q.push(t, e);
        }
        for d in pending.delivered.drain(..) {
            delivered.push(d.dgram.payload.to_vec_for_test());
        }
        match q.pop() {
            Some((t, ev)) => pending = net.handle(t, ev),
            None => break,
        }
    }
    delivered
}

proptest! {
    /// Any datagram size over any lossless topology reassembles to the
    /// exact payload.
    #[test]
    fn fragmentation_reassembles_exactly(
        len in 0usize..20_000,
        topo_idx in 0usize..3,
        seed in any::<u64>(),
    ) {
        let bg = Background::quiet();
        let (topo, c, s) = match topo_idx {
            0 => presets::same_lan(&bg),
            1 => presets::token_ring_path(&bg),
            _ => presets::slow_link_path(&bg),
        };
        let mut net = Network::new(topo, seed);
        let data: Vec<u8> = (0..len).map(|i| (i * 131 % 251) as u8).collect();
        let mut meter = CopyMeter::new();
        let d = Datagram {
            id: net.alloc_dgram_id(),
            src: c,
            dst: s,
            proto: ProtoHeader::Udp { sport: 1023, dport: 2049 },
            payload: MbufChain::from_slice(&data, &mut meter),
        };
        let out = net.send(SimTime::ZERO, d);
        let delivered = run_network(&mut net, out);
        prop_assert_eq!(delivered.len(), 1);
        prop_assert_eq!(&delivered[0], &data);
    }

    /// Several interleaved datagrams reassemble independently.
    #[test]
    fn interleaved_datagrams_do_not_mix(
        lens in proptest::collection::vec(1usize..12_000, 2..6),
        seed in any::<u64>(),
    ) {
        let bg = Background::quiet();
        let (topo, c, s) = presets::token_ring_path(&bg);
        let mut net = Network::new(topo, seed);
        let mut meter = CopyMeter::new();
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let mut expected: Vec<Vec<u8>> = Vec::new();
        let mut delivered: Vec<Vec<u8>> = Vec::new();
        for (i, len) in lens.iter().enumerate() {
            let data: Vec<u8> = (0..*len).map(|j| ((i * 37 + j) % 251) as u8).collect();
            expected.push(data.clone());
            let d = Datagram {
                id: net.alloc_dgram_id(),
                src: c,
                dst: s,
                proto: ProtoHeader::Udp { sport: 1023, dport: 2049 },
                payload: MbufChain::from_slice(&data, &mut meter),
            };
            // All bursts start at the same instant: fragments interleave
            // in the queues.
            let out = net.send(SimTime::ZERO, d);
            for (t, e) in out.events {
                q.push(t, e);
            }
        }
        while let Some((t, ev)) = q.pop() {
            let out = net.handle(t, ev);
            for (t2, e) in out.events {
                q.push(t2, e);
            }
            for d in out.delivered {
                delivered.push(d.dgram.payload.to_vec_for_test());
            }
        }
        prop_assert_eq!(delivered.len(), expected.len());
        delivered.sort();
        expected.sort();
        prop_assert_eq!(delivered, expected);
    }

    /// The chain checksum equals the flat-slice checksum for any split
    /// pattern, and flipping any byte changes it.
    #[test]
    fn checksum_invariants(
        data in proptest::collection::vec(any::<u8>(), 1..4000),
        flip in any::<prop::sample::Index>(),
    ) {
        let mut meter = CopyMeter::new();
        let chain = MbufChain::from_slice(&data, &mut meter);
        let sum = internet_checksum(&chain);
        prop_assert_eq!(sum, renofs_netsim::checksum::internet_checksum_slice(&data));
        let mut corrupted = data.clone();
        let i = flip.index(corrupted.len());
        corrupted[i] ^= 0x01;
        let chain2 = MbufChain::from_slice(&corrupted, &mut meter);
        // Ones-complement sums can collide only via reordering of 16-bit
        // words; a single bit flip always changes the sum.
        prop_assert_ne!(internet_checksum(&chain2), sum);
    }
}
