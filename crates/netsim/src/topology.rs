//! Nodes, directed links and static routing.

use std::fmt;

use renofs_sim::SimDuration;

use crate::link::{Link, LinkParams};

/// Identifies a node (host or router).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies one *direction* of a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LinkId(pub usize);

/// What a node is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// An end host (runs sockets, terminates datagrams).
    Host,
    /// A store-and-forward IP router with the given per-fragment
    /// forwarding delay (route lookup + buffer management on 1991-era
    /// router hardware).
    Router {
        /// Per-fragment forwarding processing time.
        forward_delay: SimDuration,
    },
}

pub(crate) struct Node {
    pub kind: NodeKind,
    pub name: &'static str,
    /// `routes[d]` = outgoing link toward node `d` (None for self).
    pub routes: Vec<Option<LinkId>>,
}

/// A static network topology: nodes plus directed links, with shortest-
/// path routes computed at build time.
pub struct Topology {
    pub(crate) nodes: Vec<Node>,
    pub(crate) links: Vec<Link>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Topology {
            nodes: Vec::new(),
            links: Vec::new(),
        }
    }

    /// Adds a node.
    pub fn add_node(&mut self, name: &'static str, kind: NodeKind) -> NodeId {
        self.nodes.push(Node {
            kind,
            name,
            routes: Vec::new(),
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Adds a full-duplex link: two independent directed links with the
    /// same parameters. Returns `(a_to_b, b_to_a)`.
    pub fn add_duplex_link(
        &mut self,
        a: NodeId,
        b: NodeId,
        params: LinkParams,
    ) -> (LinkId, LinkId) {
        let ab = LinkId(self.links.len());
        self.links.push(Link::new(a, b, params.clone()));
        let ba = LinkId(self.links.len());
        self.links.push(Link::new(b, a, params));
        (ab, ba)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The kind of a node.
    pub fn node_kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.0].kind
    }

    /// The node's name.
    pub fn node_name(&self, n: NodeId) -> &'static str {
        self.nodes[n.0].name
    }

    /// Computes shortest-path (hop count) routes between all node pairs.
    /// Must be called after all nodes and links are added.
    pub fn compute_routes(&mut self) {
        let n = self.nodes.len();
        // adj[u] = (link, v) pairs.
        let mut adj: Vec<Vec<(LinkId, usize)>> = vec![Vec::new(); n];
        for (i, link) in self.links.iter().enumerate() {
            adj[link.from().0].push((LinkId(i), link.to().0));
        }
        for src in 0..n {
            // BFS from src, recording the first hop toward each dest.
            let mut first_hop: Vec<Option<LinkId>> = vec![None; n];
            let mut visited = vec![false; n];
            let mut queue = std::collections::VecDeque::new();
            visited[src] = true;
            for &(l, v) in &adj[src] {
                if !visited[v] {
                    visited[v] = true;
                    first_hop[v] = Some(l);
                    queue.push_back(v);
                }
            }
            while let Some(u) = queue.pop_front() {
                for &(_, v) in &adj[u] {
                    if !visited[v] {
                        visited[v] = true;
                        first_hop[v] = first_hop[u];
                        queue.push_back(v);
                    }
                }
            }
            self.nodes[src].routes = first_hop;
        }
    }

    /// The outgoing link from `at` toward `dst`, if a route exists.
    pub fn route(&self, at: NodeId, dst: NodeId) -> Option<LinkId> {
        self.nodes[at.0].routes.get(dst.0).copied().flatten()
    }

    /// MTU of the smallest-MTU link on the path from `src` to `dst`
    /// (useful for choosing a TCP MSS).
    pub fn path_mtu(&self, src: NodeId, dst: NodeId) -> Option<usize> {
        let mut mtu = usize::MAX;
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            let link_id = self.route(at, dst)?;
            let link = &self.links[link_id.0];
            mtu = mtu.min(link.params().mtu);
            at = link.to();
            hops += 1;
            if hops > self.nodes.len() {
                return None;
            }
        }
        if mtu == usize::MAX {
            None
        } else {
            Some(mtu)
        }
    }

    /// Every directed link on the routed path from `src` to `dst`.
    pub fn path_links(&self, src: NodeId, dst: NodeId) -> Vec<LinkId> {
        let mut links = Vec::new();
        let mut at = src;
        let mut hops = 0;
        while at != dst {
            let Some(link_id) = self.route(at, dst) else {
                break;
            };
            links.push(link_id);
            at = self.links[link_id.0].to();
            hops += 1;
            if hops > self.nodes.len() {
                break;
            }
        }
        links
    }

    /// Compiles a fault plan and installs its link-level windows on every
    /// link of the `a`–`b` path, in both directions. Server-crash events
    /// are ignored here (the `World` interprets them). An empty plan
    /// installs nothing and leaves link behavior bit-identical.
    pub fn apply_faults(&mut self, plan: &crate::faults::FaultPlan, a: NodeId, b: NodeId) {
        if plan.is_empty() {
            return;
        }
        let windows = plan.compile();
        if windows.is_empty() {
            return;
        }
        let mut ids = self.path_links(a, b);
        ids.extend(self.path_links(b, a));
        for id in ids {
            self.links[id.0].set_faults(windows.clone());
        }
    }

    pub(crate) fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0]
    }

    pub(crate) fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.0]
    }

    /// Read-only statistics for every directed link, with endpoint names.
    pub fn link_stats(&self) -> Vec<(String, crate::link::LinkStats)> {
        self.links
            .iter()
            .map(|l| {
                let label = format!(
                    "{}->{}",
                    self.nodes[l.from().0].name,
                    self.nodes[l.to().0].name
                );
                (label, l.stats())
            })
            .collect()
    }
}

impl Default for Topology {
    fn default() -> Self {
        Self::new()
    }
}

/// Ready-made builders for the paper's three test configurations.
pub mod presets {
    use renofs_sim::SimDuration;

    use super::{NodeId, NodeKind, Topology};
    use crate::link::LinkParams;

    /// Background utilization applied to the production networks the
    /// paper measured across ("realistic but not controlled" loads during
    /// off-peak hours).
    #[derive(Clone, Copy, Debug)]
    pub struct Background {
        /// Fraction of Ethernet bandwidth consumed by other hosts.
        pub ethernet: f64,
        /// Fraction of the token ring consumed by other traffic.
        pub ring: f64,
        /// Random per-fragment loss probability on LAN segments.
        pub lan_loss: f64,
        /// Random per-fragment loss probability on the serial link.
        pub serial_loss: f64,
    }

    impl Background {
        /// Quiet off-peak conditions, per the paper's appendix.
        pub fn off_peak() -> Self {
            Background {
                ethernet: 0.08,
                ring: 0.05,
                lan_loss: 0.0005,
                serial_loss: 0.001,
            }
        }

        /// Daytime production-network conditions: the Ethernets and the
        /// token ring carry substantial cross-traffic, which is what
        /// makes round-trip times spiky enough for the fixed 1-second
        /// RTO to misfire (the Graphs 3-4 regime).
        pub fn production() -> Self {
            Background {
                ethernet: 0.40,
                ring: 0.45,
                lan_loss: 0.004,
                serial_loss: 0.001,
            }
        }

        /// A perfectly quiet network (unit tests, calibration).
        pub fn quiet() -> Self {
            Background {
                ethernet: 0.0,
                ring: 0.0,
                lan_loss: 0.0,
                serial_loss: 0.0,
            }
        }
    }

    fn ethernet(bg: &Background) -> LinkParams {
        LinkParams {
            bandwidth_bps: 10_000_000,
            prop_delay: SimDuration::from_micros(50),
            mtu: 1500,
            frame_overhead: 26,
            queue_capacity_bytes: 60_000,
            loss_prob: bg.lan_loss,
            bg_util: bg.ethernet,
        }
    }

    fn token_ring(bg: &Background) -> LinkParams {
        LinkParams {
            bandwidth_bps: 80_000_000,
            prop_delay: SimDuration::from_micros(200),
            mtu: 4464,
            frame_overhead: 32,
            queue_capacity_bytes: 120_000,
            loss_prob: bg.lan_loss,
            bg_util: bg.ring,
        }
    }

    fn serial_56k(bg: &Background) -> LinkParams {
        LinkParams {
            bandwidth_bps: 56_000,
            prop_delay: SimDuration::from_millis(4),
            mtu: 576,
            frame_overhead: 8,
            queue_capacity_bytes: 48_000,
            loss_prob: bg.serial_loss,
            bg_util: 0.0,
        }
    }

    /// Configuration 1: client and server on one uncongested Ethernet.
    ///
    /// Returns `(topology, client, server)`.
    pub fn same_lan(bg: &Background) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let client = t.add_node("client", NodeKind::Host);
        let server = t.add_node("server", NodeKind::Host);
        t.add_duplex_link(client, server, ethernet(bg));
        t.compute_routes();
        (t, client, server)
    }

    fn router() -> NodeKind {
        NodeKind::Router {
            forward_delay: SimDuration::from_micros(800),
        }
    }

    /// Configuration 2: two Ethernets joined by an 80 Mbit/s token ring
    /// and two IP routers.
    pub fn token_ring_path(bg: &Background) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let client = t.add_node("client", NodeKind::Host);
        let r1 = t.add_node("router1", router());
        let r2 = t.add_node("router2", router());
        let server = t.add_node("server", NodeKind::Host);
        t.add_duplex_link(client, r1, ethernet(bg));
        t.add_duplex_link(r1, r2, token_ring(bg));
        t.add_duplex_link(r2, server, ethernet(bg));
        t.compute_routes();
        (t, client, server)
    }

    /// Configuration 3: the token ring path plus a 56 Kbit/s point-to-
    /// point link and a third router.
    pub fn slow_link_path(bg: &Background) -> (Topology, NodeId, NodeId) {
        let mut t = Topology::new();
        let client = t.add_node("client", NodeKind::Host);
        let r1 = t.add_node("router1", router());
        let r2 = t.add_node("router2", router());
        let r3 = t.add_node("router3", router());
        let server = t.add_node("server", NodeKind::Host);
        t.add_duplex_link(client, r1, ethernet(bg));
        t.add_duplex_link(r1, r2, token_ring(bg));
        t.add_duplex_link(r2, r3, serial_56k(bg));
        t.add_duplex_link(r3, server, ethernet(bg));
        t.compute_routes();
        (t, client, server)
    }

    /// Stable display names for the crowd's client machines (node names
    /// are `&'static str`; 64 covers the largest sweep point).
    const CLIENT_NAMES: [&str; 64] = [
        "client1", "client2", "client3", "client4", "client5", "client6", "client7", "client8",
        "client9", "client10", "client11", "client12", "client13", "client14", "client15",
        "client16", "client17", "client18", "client19", "client20", "client21", "client22",
        "client23", "client24", "client25", "client26", "client27", "client28", "client29",
        "client30", "client31", "client32", "client33", "client34", "client35", "client36",
        "client37", "client38", "client39", "client40", "client41", "client42", "client43",
        "client44", "client45", "client46", "client47", "client48", "client49", "client50",
        "client51", "client52", "client53", "client54", "client55", "client56", "client57",
        "client58", "client59", "client60", "client61", "client62", "client63", "client64",
    ];

    fn client_name(i: usize) -> &'static str {
        CLIENT_NAMES.get(i).copied().unwrap_or("client")
    }

    /// Stable display names for a sharded fleet's server machines (8
    /// covers the largest `repro shard` sweep point).
    const SERVER_NAMES: [&str; 8] = [
        "server1", "server2", "server3", "server4", "server5", "server6", "server7", "server8",
    ];

    fn server_name(j: usize) -> &'static str {
        SERVER_NAMES.get(j).copied().unwrap_or("server")
    }

    /// A multiport bridge joining hosts on one LAN segment: store-and-
    /// forward like a router, but with 1991-era learning-bridge latency
    /// rather than an IP forwarding path.
    fn bridge() -> NodeKind {
        NodeKind::Router {
            forward_delay: SimDuration::from_micros(10),
        }
    }

    /// Configuration 1 scaled to `n` clients. `n == 1` is exactly
    /// [`same_lan`]; for larger communities each client gets its own
    /// drop onto a bridge, and the bridge–server Ethernet carries the
    /// aggregate — the shared segment every client's traffic contends
    /// for, just as on a real thickwire LAN.
    ///
    /// Returns `(topology, clients, server)`.
    pub fn same_lan_n(bg: &Background, n: usize) -> (Topology, Vec<NodeId>, NodeId) {
        assert!(n >= 1, "at least one client");
        if n == 1 {
            let (t, c, s) = same_lan(bg);
            return (t, vec![c], s);
        }
        let mut t = Topology::new();
        let clients: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(client_name(i), NodeKind::Host))
            .collect();
        let hub = t.add_node("hub", bridge());
        let server = t.add_node("server", NodeKind::Host);
        for &c in &clients {
            t.add_duplex_link(c, hub, ethernet(bg));
        }
        t.add_duplex_link(hub, server, ethernet(bg));
        t.compute_routes();
        (t, clients, server)
    }

    /// Configuration 2 scaled to `n` clients: every client enters the
    /// first router on its own Ethernet drop, then shares the token ring
    /// and the server-side Ethernet. `n == 1` is exactly
    /// [`token_ring_path`].
    pub fn token_ring_path_n(bg: &Background, n: usize) -> (Topology, Vec<NodeId>, NodeId) {
        assert!(n >= 1, "at least one client");
        if n == 1 {
            let (t, c, s) = token_ring_path(bg);
            return (t, vec![c], s);
        }
        let mut t = Topology::new();
        let clients: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(client_name(i), NodeKind::Host))
            .collect();
        let r1 = t.add_node("router1", router());
        let r2 = t.add_node("router2", router());
        let server = t.add_node("server", NodeKind::Host);
        for &c in &clients {
            t.add_duplex_link(c, r1, ethernet(bg));
        }
        t.add_duplex_link(r1, r2, token_ring(bg));
        t.add_duplex_link(r2, server, ethernet(bg));
        t.compute_routes();
        (t, clients, server)
    }

    /// Configuration 3 scaled to `n` clients: the shared 56 Kbit/s serial
    /// hop throttles the whole community. `n == 1` is exactly
    /// [`slow_link_path`].
    pub fn slow_link_path_n(bg: &Background, n: usize) -> (Topology, Vec<NodeId>, NodeId) {
        assert!(n >= 1, "at least one client");
        if n == 1 {
            let (t, c, s) = slow_link_path(bg);
            return (t, vec![c], s);
        }
        let mut t = Topology::new();
        let clients: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(client_name(i), NodeKind::Host))
            .collect();
        let r1 = t.add_node("router1", router());
        let r2 = t.add_node("router2", router());
        let r3 = t.add_node("router3", router());
        let server = t.add_node("server", NodeKind::Host);
        for &c in &clients {
            t.add_duplex_link(c, r1, ethernet(bg));
        }
        t.add_duplex_link(r1, r2, token_ring(bg));
        t.add_duplex_link(r2, r3, serial_56k(bg));
        t.add_duplex_link(r3, server, ethernet(bg));
        t.compute_routes();
        (t, clients, server)
    }

    /// Configuration 1 sharded to `m` servers: every client and every
    /// server gets its own drop onto the bridge, so the shared segment
    /// carries the whole fleet's aggregate. `m == 1` is exactly
    /// [`same_lan_n`] (and therefore byte-identical to the pre-shard
    /// worlds).
    ///
    /// Returns `(topology, clients, servers)`.
    pub fn same_lan_nm(
        bg: &Background,
        n: usize,
        m: usize,
    ) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
        assert!(m >= 1, "at least one server");
        if m == 1 {
            let (t, c, s) = same_lan_n(bg, n);
            return (t, c, vec![s]);
        }
        assert!(n >= 1, "at least one client");
        let mut t = Topology::new();
        let clients: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(client_name(i), NodeKind::Host))
            .collect();
        let hub = t.add_node("hub", bridge());
        let servers: Vec<NodeId> = (0..m)
            .map(|j| t.add_node(server_name(j), NodeKind::Host))
            .collect();
        for &c in &clients {
            t.add_duplex_link(c, hub, ethernet(bg));
        }
        for &s in &servers {
            t.add_duplex_link(hub, s, ethernet(bg));
        }
        t.compute_routes();
        (t, clients, servers)
    }

    /// Configuration 2 sharded to `m` servers: the clients share the
    /// token ring as before, then each server hangs off the far router
    /// on its own Ethernet drop — the ring stays the common bottleneck.
    /// `m == 1` is exactly [`token_ring_path_n`].
    pub fn token_ring_path_nm(
        bg: &Background,
        n: usize,
        m: usize,
    ) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
        assert!(m >= 1, "at least one server");
        if m == 1 {
            let (t, c, s) = token_ring_path_n(bg, n);
            return (t, c, vec![s]);
        }
        assert!(n >= 1, "at least one client");
        let mut t = Topology::new();
        let clients: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(client_name(i), NodeKind::Host))
            .collect();
        let r1 = t.add_node("router1", router());
        let r2 = t.add_node("router2", router());
        let servers: Vec<NodeId> = (0..m)
            .map(|j| t.add_node(server_name(j), NodeKind::Host))
            .collect();
        for &c in &clients {
            t.add_duplex_link(c, r1, ethernet(bg));
        }
        t.add_duplex_link(r1, r2, token_ring(bg));
        for &s in &servers {
            t.add_duplex_link(r2, s, ethernet(bg));
        }
        t.compute_routes();
        (t, clients, servers)
    }

    /// Configuration 3 sharded to `m` servers: the whole fleet still
    /// funnels through the 56 Kbit/s serial hop before fanning out to
    /// per-server Ethernet drops. `m == 1` is exactly
    /// [`slow_link_path_n`].
    pub fn slow_link_path_nm(
        bg: &Background,
        n: usize,
        m: usize,
    ) -> (Topology, Vec<NodeId>, Vec<NodeId>) {
        assert!(m >= 1, "at least one server");
        if m == 1 {
            let (t, c, s) = slow_link_path_n(bg, n);
            return (t, c, vec![s]);
        }
        assert!(n >= 1, "at least one client");
        let mut t = Topology::new();
        let clients: Vec<NodeId> = (0..n)
            .map(|i| t.add_node(client_name(i), NodeKind::Host))
            .collect();
        let r1 = t.add_node("router1", router());
        let r2 = t.add_node("router2", router());
        let r3 = t.add_node("router3", router());
        let servers: Vec<NodeId> = (0..m)
            .map(|j| t.add_node(server_name(j), NodeKind::Host))
            .collect();
        for &c in &clients {
            t.add_duplex_link(c, r1, ethernet(bg));
        }
        t.add_duplex_link(r1, r2, token_ring(bg));
        t.add_duplex_link(r2, r3, serial_56k(bg));
        for &s in &servers {
            t.add_duplex_link(r3, s, ethernet(bg));
        }
        t.compute_routes();
        (t, clients, servers)
    }
}

#[cfg(test)]
mod tests {
    use super::presets::{self, Background};
    use super::*;

    #[test]
    fn routes_on_chain_topology() {
        let (t, client, server) = presets::slow_link_path(&Background::quiet());
        // The route from client toward server must exist at every hop.
        let mut at = client;
        let mut hops = 0;
        while at != server {
            let l = t.route(at, server).expect("route exists");
            at = t.link(l).to();
            hops += 1;
        }
        assert_eq!(hops, 4, "client, 3 routers, server = 4 links");
        // And back.
        assert!(t.route(server, client).is_some());
    }

    #[test]
    fn path_mtu_finds_bottleneck() {
        let bg = Background::quiet();
        let (t, c, s) = presets::same_lan(&bg);
        assert_eq!(t.path_mtu(c, s), Some(1500));
        let (t, c, s) = presets::token_ring_path(&bg);
        assert_eq!(
            t.path_mtu(c, s),
            Some(1500),
            "ring MTU larger than ethernet"
        );
        let (t, c, s) = presets::slow_link_path(&bg);
        assert_eq!(t.path_mtu(c, s), Some(576), "serial link is the bottleneck");
    }

    #[test]
    fn node_metadata() {
        let (t, c, s) = presets::token_ring_path(&Background::quiet());
        assert_eq!(t.node_kind(c), NodeKind::Host);
        assert_eq!(t.node_name(s), "server");
        assert!(matches!(t.node_kind(NodeId(1)), NodeKind::Router { .. }));
        assert_eq!(t.node_count(), 4);
    }

    #[test]
    fn route_to_self_is_none() {
        let (t, c, _) = presets::same_lan(&Background::quiet());
        assert_eq!(t.route(c, c), None);
    }

    #[test]
    fn n_client_presets_collapse_to_singles() {
        let bg = Background::quiet();
        // n == 1 must build the identical topology (node and link order)
        // as the original single-client presets.
        let (t1, c1, s1) = presets::same_lan(&bg);
        let (tn, cn, sn) = presets::same_lan_n(&bg, 1);
        assert_eq!(cn, vec![c1]);
        assert_eq!(sn, s1);
        assert_eq!(tn.node_count(), t1.node_count());
        let (t1, _, _) = presets::token_ring_path(&bg);
        let (tn, cn, _) = presets::token_ring_path_n(&bg, 1);
        assert_eq!(tn.node_count(), t1.node_count());
        assert_eq!(cn.len(), 1);
        let (t1, _, _) = presets::slow_link_path(&bg);
        let (tn, cn, _) = presets::slow_link_path_n(&bg, 1);
        assert_eq!(tn.node_count(), t1.node_count());
        assert_eq!(cn.len(), 1);
    }

    #[test]
    fn n_client_lan_routes_through_shared_segment() {
        let bg = Background::quiet();
        let (t, clients, server) = presets::same_lan_n(&bg, 4);
        assert_eq!(clients.len(), 4);
        assert_eq!(t.node_count(), 6, "4 clients + hub + server");
        // Every client reaches the server in 2 hops via the bridge, and
        // the final hop is the same shared link for all of them.
        let mut shared = None;
        for &c in &clients {
            let path = t.path_links(c, server);
            assert_eq!(path.len(), 2, "client -> hub -> server");
            let last = *path.last().unwrap();
            if let Some(prev) = shared {
                assert_eq!(prev, last, "aggregate rides one segment");
            }
            shared = Some(last);
        }
        assert_eq!(t.path_mtu(clients[0], server), Some(1500));
    }

    #[test]
    fn nm_presets_with_one_server_collapse_to_n_presets() {
        let bg = Background::quiet();
        let (tn, cn, sn) = presets::same_lan_n(&bg, 4);
        let (tm, cm, sm) = presets::same_lan_nm(&bg, 4, 1);
        assert_eq!(cm, cn);
        assert_eq!(sm, vec![sn]);
        assert_eq!(tm.node_count(), tn.node_count());
        let (tn, _, sn) = presets::token_ring_path_n(&bg, 3);
        let (tm, _, sm) = presets::token_ring_path_nm(&bg, 3, 1);
        assert_eq!(sm, vec![sn]);
        assert_eq!(tm.node_count(), tn.node_count());
        let (tn, _, sn) = presets::slow_link_path_n(&bg, 2);
        let (tm, _, sm) = presets::slow_link_path_nm(&bg, 2, 1);
        assert_eq!(sm, vec![sn]);
        assert_eq!(tm.node_count(), tn.node_count());
    }

    #[test]
    fn nm_lan_servers_share_the_bridge_segmentwise() {
        let bg = Background::quiet();
        let (t, clients, servers) = presets::same_lan_nm(&bg, 4, 3);
        assert_eq!(t.node_count(), 4 + 1 + 3, "clients + bridge + servers");
        for &c in &clients {
            for &s in &servers {
                let path = t.path_links(c, s);
                assert_eq!(path.len(), 2, "client -> bridge -> server");
                // Every client's first hop toward every server is its own
                // access drop (the multi-server carve depends on this).
                assert_eq!(t.route(c, s), t.route(c, servers[0]));
            }
        }
        // Distinct server drops: the last hop differs per server.
        let a = *t.path_links(clients[0], servers[0]).last().unwrap();
        let b = *t.path_links(clients[0], servers[1]).last().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn nm_slow_link_shares_serial_hop_across_servers() {
        let bg = Background::quiet();
        let (t, clients, servers) = presets::slow_link_path_nm(&bg, 2, 2);
        for &c in &clients {
            for &s in &servers {
                assert_eq!(t.path_mtu(c, s), Some(576), "serial is the bottleneck");
                assert_eq!(t.path_links(c, s).len(), 4);
                assert_eq!(t.route(c, s), t.route(c, servers[0]));
            }
        }
        let a = t.path_links(clients[0], servers[0]);
        let b = t.path_links(clients[0], servers[1]);
        assert_eq!(a[2], b[2], "serial hop shared by both shards");
        assert_ne!(a[3], b[3], "per-server drops behind the last router");
    }

    #[test]
    fn n_client_slow_link_keeps_serial_bottleneck() {
        let bg = Background::quiet();
        let (t, clients, server) = presets::slow_link_path_n(&bg, 8);
        for &c in &clients {
            assert_eq!(t.path_mtu(c, server), Some(576));
            assert_eq!(t.path_links(c, server).len(), 4);
        }
        // Distinct access links, shared serial hop.
        let a = t.path_links(clients[0], server);
        let b = t.path_links(clients[7], server);
        assert_ne!(a[0], b[0]);
        assert_eq!(a[2], b[2], "serial hop is shared");
    }
}
