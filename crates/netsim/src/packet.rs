//! Datagrams and fragments.
//!
//! Payload bytes travel as real [`MbufChain`]s; protocol headers are
//! carried as typed metadata but *accounted* at their wire sizes, so link
//! serialization and fragmentation arithmetic match the real stacks.

use renofs_mbuf::MbufChain;

use crate::topology::NodeId;

/// IPv4 header size (no options).
pub const IP_HEADER: usize = 20;

/// UDP header size.
pub const UDP_HEADER: usize = 8;

/// TCP header size (no options).
pub const TCP_HEADER: usize = 20;

/// TCP flag bits carried in segment metadata.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TcpFlags {
    /// Connection-open.
    pub syn: bool,
    /// Acknowledgment field valid.
    pub ack: bool,
    /// Connection-close.
    pub fin: bool,
}

/// Transport-layer header metadata.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProtoHeader {
    /// A UDP datagram.
    Udp {
        /// Source port.
        sport: u16,
        /// Destination port.
        dport: u16,
    },
    /// A TCP segment.
    Tcp {
        /// Source port.
        sport: u16,
        /// Destination port.
        dport: u16,
        /// First sequence number of the payload.
        seq: u32,
        /// Acknowledgment number (valid when `flags.ack`).
        ack: u32,
        /// Advertised receive window in bytes.
        window: u32,
        /// SYN/ACK/FIN flags.
        flags: TcpFlags,
    },
}

impl ProtoHeader {
    /// Wire size of this transport header.
    pub fn header_len(&self) -> usize {
        match self {
            ProtoHeader::Udp { .. } => UDP_HEADER,
            ProtoHeader::Tcp { .. } => TCP_HEADER,
        }
    }

    /// Destination port.
    pub fn dport(&self) -> u16 {
        match self {
            ProtoHeader::Udp { dport, .. } | ProtoHeader::Tcp { dport, .. } => *dport,
        }
    }

    /// Source port.
    pub fn sport(&self) -> u16 {
        match self {
            ProtoHeader::Udp { sport, .. } | ProtoHeader::Tcp { sport, .. } => *sport,
        }
    }
}

/// One IP datagram: transport header metadata plus a payload chain.
#[derive(Debug)]
pub struct Datagram {
    /// Unique id (the IP identification field, widened).
    pub id: u64,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Transport header.
    pub proto: ProtoHeader,
    /// Transport payload.
    pub payload: MbufChain,
}

impl Datagram {
    /// Total IP-layer length: IP header + transport header + payload.
    pub fn ip_len(&self) -> usize {
        IP_HEADER + self.proto.header_len() + self.payload.len()
    }
}

/// One IP fragment in flight.
///
/// The first fragment (offset 0) carries the transport header; the
/// payload chain is a cluster-sharing window onto the original datagram's
/// payload, so fragmentation copies no data.
#[derive(Clone, Debug)]
pub struct Fragment {
    /// Id of the datagram this fragment belongs to.
    pub dgram_id: u64,
    /// Originating host.
    pub src: NodeId,
    /// Destination host.
    pub dst: NodeId,
    /// Transport header (metadata rides on every fragment; only the
    /// offset-0 fragment accounts for its wire bytes).
    pub proto: ProtoHeader,
    /// Byte offset of this fragment's payload within the transport
    /// payload.
    pub offset: usize,
    /// Total transport payload length of the original datagram.
    pub total_len: usize,
    /// Whether more fragments follow.
    pub more: bool,
    /// Whether an injected fault damaged this fragment's bytes in flight.
    /// Checked by the receiving host's checksum handling at reassembly.
    pub corrupted: bool,
    /// This fragment's slice of the payload.
    pub payload: MbufChain,
}

impl Fragment {
    /// Bytes this fragment occupies at the IP layer.
    pub fn ip_len(&self) -> usize {
        let transport_hdr = if self.offset == 0 {
            self.proto.header_len()
        } else {
            0
        };
        IP_HEADER + transport_hdr + self.payload.len()
    }

    /// Whether this fragment is the only one of its datagram.
    pub fn is_whole(&self) -> bool {
        self.offset == 0 && !self.more
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renofs_mbuf::CopyMeter;

    fn node(i: usize) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn datagram_ip_len_includes_headers() {
        let mut m = CopyMeter::new();
        let d = Datagram {
            id: 1,
            src: node(0),
            dst: node(1),
            proto: ProtoHeader::Udp {
                sport: 1023,
                dport: 2049,
            },
            payload: MbufChain::from_slice(&[0u8; 100], &mut m),
        };
        assert_eq!(d.ip_len(), 20 + 8 + 100);
    }

    #[test]
    fn tcp_header_is_larger() {
        let udp = ProtoHeader::Udp { sport: 1, dport: 2 };
        let tcp = ProtoHeader::Tcp {
            sport: 1,
            dport: 2,
            seq: 0,
            ack: 0,
            window: 4096,
            flags: TcpFlags::default(),
        };
        assert_eq!(udp.header_len(), 8);
        assert_eq!(tcp.header_len(), 20);
        assert_eq!(tcp.dport(), 2);
        assert_eq!(udp.sport(), 1);
    }

    #[test]
    fn only_first_fragment_counts_transport_header() {
        let mut m = CopyMeter::new();
        let mut mk = |offset: usize, more: bool| Fragment {
            dgram_id: 9,
            src: node(0),
            dst: node(1),
            proto: ProtoHeader::Udp {
                sport: 1,
                dport: 2049,
            },
            offset,
            total_len: 3000,
            more,
            corrupted: false,
            payload: MbufChain::from_slice(&[0u8; 1472], &mut m),
        };
        let first = mk(0, true);
        let rest = mk(1472, false);
        assert_eq!(first.ip_len(), 20 + 8 + 1472);
        assert_eq!(rest.ip_len(), 20 + 1472);
        assert!(!first.is_whole());
    }
}
