//! The Internet checksum (RFC 1071) over mbuf chains.
//!
//! After the Section 3 interface changes, the checksum routine was one of
//! the two remaining CPU bottlenecks on the paper's server. The host model
//! charges checksum CPU per byte; this module provides the actual
//! computation, walking chain segments without flattening them, including
//! the odd-byte carry between segments that the real `in_cksum` handles.

use renofs_mbuf::MbufChain;

/// Computes the 16-bit ones-complement Internet checksum of a chain.
///
/// # Examples
///
/// ```
/// use renofs_mbuf::{CopyMeter, MbufChain};
/// use renofs_netsim::internet_checksum;
///
/// let mut meter = CopyMeter::new();
/// let chain = MbufChain::from_slice(&[0x00, 0x01, 0xf2, 0x03], &mut meter);
/// assert_eq!(internet_checksum(&chain), !0xf204u16);
/// ```
pub fn internet_checksum(chain: &MbufChain) -> u16 {
    let mut sum: u32 = 0;
    // Carry an odd leading byte across segment boundaries.
    let mut pending: Option<u8> = None;
    for seg in chain.segments() {
        let mut bytes = seg;
        if let Some(hi) = pending.take() {
            sum += u32::from(u16::from_be_bytes([hi, bytes[0]]));
            bytes = &bytes[1..];
        }
        let mut iter = bytes.chunks_exact(2);
        for pair in &mut iter {
            sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
        }
        if let [last] = iter.remainder() {
            pending = Some(*last);
        }
    }
    if let Some(hi) = pending {
        sum += u32::from(u16::from_be_bytes([hi, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

/// Checksum of a contiguous slice (reference implementation for tests and
/// for callers that have flat data).
pub fn internet_checksum_slice(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut iter = data.chunks_exact(2);
    for pair in &mut iter {
        sum += u32::from(u16::from_be_bytes([pair[0], pair[1]]));
    }
    if let [last] = iter.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xFFFF) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use renofs_mbuf::CopyMeter;

    #[test]
    fn rfc1071_example() {
        // RFC 1071 worked example: 00 01 f2 03 f4 f5 f6 f7 sums to ddf2
        // before complement.
        let data = [0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7];
        assert_eq!(internet_checksum_slice(&data), !0xddf2u16);
    }

    #[test]
    fn chain_matches_slice() {
        let mut m = CopyMeter::new();
        let data: Vec<u8> = (0..9001u32).map(|i| (i * 31 % 256) as u8).collect();
        let chain = MbufChain::from_slice(&data, &mut m);
        assert_eq!(internet_checksum(&chain), internet_checksum_slice(&data));
    }

    #[test]
    fn odd_segment_boundaries_handled() {
        let mut m = CopyMeter::new();
        let data: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
        // Build with odd-sized appends so segments end on odd bytes.
        let mut chain = MbufChain::new();
        let mut rest = &data[..];
        for n in [3usize, 7, 111, 113, 1, 255].iter().cycle() {
            if rest.is_empty() {
                break;
            }
            let take = (*n).min(rest.len());
            let mut piece = MbufChain::from_slice(&rest[..take], &mut m);
            let _ = piece.split_off(take, &mut m);
            chain.append_chain(piece);
            rest = &rest[take..];
        }
        assert_eq!(chain.len(), data.len());
        assert_eq!(internet_checksum(&chain), internet_checksum_slice(&data));
    }

    #[test]
    fn empty_chain_checksum() {
        let chain = MbufChain::new();
        assert_eq!(internet_checksum(&chain), 0xFFFF);
        assert_eq!(internet_checksum_slice(&[]), 0xFFFF);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut m = CopyMeter::new();
        let good = MbufChain::from_slice(b"some rpc payload here...", &mut m);
        let mut corrupted = b"some rpc payload here...".to_vec();
        corrupted[5] ^= 0x40;
        let bad = MbufChain::from_slice(&corrupted, &mut m);
        assert_ne!(internet_checksum(&good), internet_checksum(&bad));
    }
}
