//! Deterministic fault-injection timelines.
//!
//! The paper's transport defenses — retransmission with backoff,
//! congestion windows, the server's duplicate-request cache — exist
//! because real deployments see *correlated* failures: routers reboot,
//! serial links flap, bursts of loss wipe out every fragment of an RPC,
//! and retransmitted requests arrive twice. A [`FaultPlan`] is a list of
//! time-scheduled fault events compiled onto the links of a topology (and,
//! for server crashes, interpreted by the `World`), so those scenarios can
//! be replayed byte-for-byte identically at any `--jobs` level: all fault
//! state is a pure function of virtual time, and the only randomness used
//! is the link RNG that already drives background loss.
//!
//! Link-level events apply to **every link on the client–server path, in
//! both directions** — the path is the unit the paper reasons about
//! (client, routers, serial hop, server), and downing both directions is
//! exactly a network partition. [`FaultPlan::partition`] is the named
//! helper for that case.

use renofs_sim::{SimDuration, SimTime};

/// One scheduled fault.
#[derive(Clone, Debug)]
pub struct FaultEvent {
    /// When the event fires.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// The kinds of faults a plan can schedule.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Path links go down (frames offered while down are dropped).
    LinkDown,
    /// Path links come back up.
    LinkUp,
    /// Gilbert–Elliott-style bad state: per-frame loss probability is
    /// elevated by `prob` for `duration`.
    LossBurst {
        /// Additional loss probability while the burst is active.
        prob: f64,
        /// How long the bad state lasts.
        duration: SimDuration,
    },
    /// One-way delay increases by `extra` for `duration` (route change,
    /// congested peering point).
    DelaySpike {
        /// Added one-way delay.
        extra: SimDuration,
        /// Window length.
        duration: SimDuration,
    },
    /// Frames are duplicated with probability `prob` for `duration`
    /// (retransmitting bridges, flapping spanning trees).
    Duplicate {
        /// Per-frame duplication probability.
        prob: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// Frames are delayed by a random extra amount up to `max_extra`
    /// with probability `prob`, letting later frames overtake them
    /// (bounded reordering).
    Reorder {
        /// Per-frame reorder probability.
        prob: f64,
        /// Maximum extra delay a reordered frame can pick up.
        max_extra: SimDuration,
        /// Window length.
        duration: SimDuration,
    },
    /// Frames have their bytes corrupted in flight with probability
    /// `prob` for `duration` (failing NIC, noisy serial hop). Corrupted
    /// frames still arrive; whether the damage is caught depends on the
    /// receiver's checksum coverage (see `Network`).
    Corrupt {
        /// Per-frame corruption probability.
        prob: f64,
        /// Window length.
        duration: SimDuration,
    },
    /// The NFS server crashes, losing all volatile state, and reboots
    /// after `downtime`. Interpreted by the `World`, not the network.
    ServerCrash {
        /// Time from crash to the server accepting requests again.
        downtime: SimDuration,
    },
}

/// A deterministic, time-ordered schedule of fault events.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// The scheduled events (order of insertion is irrelevant; windows
    /// are compiled by time).
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan: injects nothing and leaves every run byte-identical
    /// to a fault-free simulation.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True if the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(mut self, at: SimTime, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self
    }

    /// Path links go down at `at` and come back after `duration` (a flap).
    pub fn flap(self, at: SimTime, duration: SimDuration) -> Self {
        self.push(at, FaultKind::LinkDown)
            .push(at + duration, FaultKind::LinkUp)
    }

    /// Downs both directions of the client–server path for `duration`:
    /// a full network partition. (Identical to [`FaultPlan::flap`]; the
    /// name records intent.)
    pub fn partition(self, at: SimTime, duration: SimDuration) -> Self {
        self.flap(at, duration)
    }

    /// Elevated loss window.
    pub fn loss_burst(self, at: SimTime, prob: f64, duration: SimDuration) -> Self {
        self.push(at, FaultKind::LossBurst { prob, duration })
    }

    /// Added one-way delay window.
    pub fn delay_spike(self, at: SimTime, extra: SimDuration, duration: SimDuration) -> Self {
        self.push(at, FaultKind::DelaySpike { extra, duration })
    }

    /// Frame-duplication window.
    pub fn duplicate(self, at: SimTime, prob: f64, duration: SimDuration) -> Self {
        self.push(at, FaultKind::Duplicate { prob, duration })
    }

    /// Bounded-reordering window.
    pub fn reorder(
        self,
        at: SimTime,
        prob: f64,
        max_extra: SimDuration,
        duration: SimDuration,
    ) -> Self {
        self.push(
            at,
            FaultKind::Reorder {
                prob,
                max_extra,
                duration,
            },
        )
    }

    /// Byte-corruption window.
    pub fn corrupt(self, at: SimTime, prob: f64, duration: SimDuration) -> Self {
        self.push(at, FaultKind::Corrupt { prob, duration })
    }

    /// Server crash at `at`, rebooting after `downtime`.
    pub fn server_crash(self, at: SimTime, downtime: SimDuration) -> Self {
        self.push(at, FaultKind::ServerCrash { downtime })
    }

    /// The scheduled server crashes as `(at, downtime)` pairs, in time
    /// order. These are for the `World`; the network ignores them.
    pub fn server_crashes(&self) -> Vec<(SimTime, SimDuration)> {
        let mut crashes: Vec<(SimTime, SimDuration)> = self
            .events
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::ServerCrash { downtime } => Some((e.at, downtime)),
                _ => None,
            })
            .collect();
        crashes.sort_by_key(|&(at, _)| at);
        crashes
    }

    /// Compiles the link-level events into queryable time windows.
    pub fn compile(&self) -> FaultWindows {
        let mut w = FaultWindows::default();
        let mut sorted: Vec<&FaultEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| e.at);
        let mut down_since: Option<u64> = None;
        for ev in sorted {
            let at = ev.at.as_nanos();
            match ev.kind {
                FaultKind::LinkDown => {
                    if down_since.is_none() {
                        down_since = Some(at);
                    }
                }
                FaultKind::LinkUp => {
                    if let Some(start) = down_since.take() {
                        w.down.push((start, at));
                    }
                }
                FaultKind::LossBurst { prob, duration } => {
                    w.loss.push((at, at + duration.as_nanos(), prob));
                }
                FaultKind::DelaySpike { extra, duration } => {
                    w.delay
                        .push((at, at + duration.as_nanos(), extra.as_nanos()));
                }
                FaultKind::Duplicate { prob, duration } => {
                    w.dup.push((at, at + duration.as_nanos(), prob));
                }
                FaultKind::Reorder {
                    prob,
                    max_extra,
                    duration,
                } => {
                    w.reorder
                        .push((at, at + duration.as_nanos(), prob, max_extra.as_nanos()));
                }
                FaultKind::Corrupt { prob, duration } => {
                    w.corrupt.push((at, at + duration.as_nanos(), prob));
                }
                FaultKind::ServerCrash { .. } => {}
            }
        }
        if let Some(start) = down_since {
            // A Down with no matching Up: down for the rest of time.
            w.down.push((start, u64::MAX));
        }
        w
    }
}

/// Link-level fault state compiled from a [`FaultPlan`]: half-open
/// `[start, end)` windows in nanoseconds, queried by virtual time. Pure
/// and immutable, so fault state never depends on event-processing order.
#[derive(Clone, Debug, Default)]
pub struct FaultWindows {
    down: Vec<(u64, u64)>,
    loss: Vec<(u64, u64, f64)>,
    delay: Vec<(u64, u64, u64)>,
    dup: Vec<(u64, u64, f64)>,
    reorder: Vec<(u64, u64, f64, u64)>,
    corrupt: Vec<(u64, u64, f64)>,
}

impl FaultWindows {
    /// True if no window of any kind is scheduled (the fast path: a link
    /// with empty windows behaves exactly as before this module existed).
    pub fn is_empty(&self) -> bool {
        self.down.is_empty()
            && self.loss.is_empty()
            && self.delay.is_empty()
            && self.dup.is_empty()
            && self.reorder.is_empty()
            && self.corrupt.is_empty()
    }

    /// Is the link down at `now`?
    pub fn is_down(&self, now: SimTime) -> bool {
        let t = now.as_nanos();
        self.down.iter().any(|&(s, e)| s <= t && t < e)
    }

    /// Additional loss probability active at `now` (sums overlapping
    /// bursts, capped at 1.0 by the caller's clamp).
    pub fn extra_loss(&self, now: SimTime) -> f64 {
        let t = now.as_nanos();
        self.loss
            .iter()
            .filter(|&&(s, e, _)| s <= t && t < e)
            .map(|&(_, _, p)| p)
            .sum()
    }

    /// Additional one-way delay active at `now`.
    pub fn extra_delay(&self, now: SimTime) -> SimDuration {
        let t = now.as_nanos();
        let ns: u64 = self
            .delay
            .iter()
            .filter(|&&(s, e, _)| s <= t && t < e)
            .map(|&(_, _, d)| d)
            .sum();
        SimDuration::from_nanos(ns)
    }

    /// Duplication probability active at `now`, if any window covers it.
    pub fn dup_prob(&self, now: SimTime) -> Option<f64> {
        let t = now.as_nanos();
        self.dup
            .iter()
            .find(|&&(s, e, _)| s <= t && t < e)
            .map(|&(_, _, p)| p)
    }

    /// Reorder probability and delay bound active at `now`, if any.
    pub fn reorder_at(&self, now: SimTime) -> Option<(f64, SimDuration)> {
        let t = now.as_nanos();
        self.reorder
            .iter()
            .find(|&&(s, e, _, _)| s <= t && t < e)
            .map(|&(_, _, p, m)| (p, SimDuration::from_nanos(m)))
    }

    /// Corruption probability active at `now`, if any window covers it.
    pub fn corrupt_prob(&self, now: SimTime) -> Option<f64> {
        let t = now.as_nanos();
        self.corrupt
            .iter()
            .find(|&&(s, e, _)| s <= t && t < e)
            .map(|&(_, _, p)| p)
    }

    /// Total scheduled downtime across all finite down windows.
    pub fn total_downtime(&self) -> SimDuration {
        let ns: u64 = self
            .down
            .iter()
            .filter(|&&(_, e)| e != u64::MAX)
            .map(|&(s, e)| e - s)
            .sum();
        SimDuration::from_nanos(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_compiles_to_empty_windows() {
        let plan = FaultPlan::new();
        assert!(plan.is_empty());
        let w = plan.compile();
        assert!(w.is_empty());
        assert!(!w.is_down(SimTime::from_secs(5)));
        assert_eq!(w.extra_loss(SimTime::from_secs(5)), 0.0);
        assert_eq!(w.total_downtime(), SimDuration::ZERO);
    }

    #[test]
    fn flap_window_is_half_open() {
        let plan = FaultPlan::new().flap(SimTime::from_secs(10), SimDuration::from_secs(5));
        let w = plan.compile();
        assert!(!w.is_down(SimTime::from_millis(9_999)));
        assert!(w.is_down(SimTime::from_secs(10)));
        assert!(w.is_down(SimTime::from_millis(14_999)));
        assert!(!w.is_down(SimTime::from_secs(15)));
        assert_eq!(w.total_downtime(), SimDuration::from_secs(5));
    }

    #[test]
    fn unmatched_down_lasts_forever() {
        let mut plan = FaultPlan::new();
        plan.events.push(FaultEvent {
            at: SimTime::from_secs(3),
            kind: FaultKind::LinkDown,
        });
        let w = plan.compile();
        assert!(w.is_down(SimTime::from_secs(1_000_000)));
    }

    #[test]
    fn overlapping_bursts_sum() {
        let plan = FaultPlan::new()
            .loss_burst(SimTime::from_secs(1), 0.2, SimDuration::from_secs(10))
            .loss_burst(SimTime::from_secs(5), 0.3, SimDuration::from_secs(10));
        let w = plan.compile();
        assert_eq!(w.extra_loss(SimTime::from_secs(2)), 0.2);
        let both = w.extra_loss(SimTime::from_secs(6));
        assert!((both - 0.5).abs() < 1e-12);
        assert_eq!(w.extra_loss(SimTime::from_secs(20)), 0.0);
    }

    #[test]
    fn crash_events_are_sorted_and_ignored_by_windows() {
        let plan = FaultPlan::new()
            .server_crash(SimTime::from_secs(40), SimDuration::from_secs(10))
            .server_crash(SimTime::from_secs(20), SimDuration::from_secs(5));
        let crashes = plan.server_crashes();
        assert_eq!(
            crashes,
            vec![
                (SimTime::from_secs(20), SimDuration::from_secs(5)),
                (SimTime::from_secs(40), SimDuration::from_secs(10)),
            ]
        );
        assert!(plan.compile().is_empty());
    }

    #[test]
    fn dup_and_reorder_windows() {
        let plan = FaultPlan::new()
            .duplicate(SimTime::from_secs(1), 0.5, SimDuration::from_secs(2))
            .reorder(
                SimTime::from_secs(4),
                0.25,
                SimDuration::from_millis(30),
                SimDuration::from_secs(2),
            );
        let w = plan.compile();
        assert_eq!(w.dup_prob(SimTime::from_secs(2)), Some(0.5));
        assert_eq!(w.dup_prob(SimTime::from_secs(5)), None);
        let (p, m) = w.reorder_at(SimTime::from_secs(5)).unwrap();
        assert!((p - 0.25).abs() < 1e-12);
        assert_eq!(m, SimDuration::from_millis(30));
        assert_eq!(w.reorder_at(SimTime::from_secs(1)), None);
    }

    #[test]
    fn corrupt_window_queries() {
        let plan = FaultPlan::new().corrupt(SimTime::from_secs(3), 0.4, SimDuration::from_secs(2));
        let w = plan.compile();
        assert!(!w.is_empty());
        assert_eq!(w.corrupt_prob(SimTime::from_secs(2)), None);
        assert_eq!(w.corrupt_prob(SimTime::from_secs(3)), Some(0.4));
        assert_eq!(w.corrupt_prob(SimTime::from_secs(4)), Some(0.4));
        assert_eq!(w.corrupt_prob(SimTime::from_secs(5)), None);
    }
}
