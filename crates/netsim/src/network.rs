//! The network core: fragmentation, forwarding and reassembly.

use std::collections::HashMap;

use renofs_mbuf::{CopyMeter, MbufChain};
use renofs_sim::{Rng, SimDuration, SimTime};

use crate::link::TxResult;
use crate::packet::{Datagram, Fragment, ProtoHeader, IP_HEADER};
use crate::topology::{LinkId, NodeId, NodeKind, Topology};

/// Events the network schedules for itself via the caller's event queue.
// The fragment variant is fat because `MbufChain` keeps its segment
// list inline; boxing it here would put an allocation back on the
// per-hop datapath that the inline representation exists to remove.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum NetEvent {
    /// A fragment finishes traversing `link` and arrives at its far end.
    FragArrive {
        /// The link traversed.
        link: LinkId,
        /// The fragment.
        frag: Fragment,
    },
    /// Reassembly timer for `(host, src, dgram_id)` fires; incomplete
    /// datagrams are discarded (the whole-datagram cost of one lost
    /// fragment).
    ReasmExpire {
        /// Destination host doing the reassembly.
        host: NodeId,
        /// Source of the datagram.
        src: NodeId,
        /// Datagram id.
        dgram_id: u64,
    },
}

/// A datagram delivered to a host.
#[derive(Debug)]
pub struct Delivery {
    /// The receiving host.
    pub host: NodeId,
    /// The reassembled datagram.
    pub dgram: Datagram,
    /// How many fragments arrived to complete it (receive-interrupt
    /// pricing).
    pub frags: usize,
}

/// Output of a network step: follow-on events plus completed deliveries.
///
/// The driver loop owns one of these and passes it to
/// [`Network::send_into`] / [`Network::handle_into`] each step, draining
/// it between steps, so the per-hop path performs no allocation once the
/// vectors have grown to their working size.
#[derive(Debug, Default)]
pub struct NetOutput {
    /// Events to schedule.
    pub events: Vec<(SimTime, NetEvent)>,
    /// Datagrams that completed reassembly.
    pub delivered: Vec<Delivery>,
}

impl NetOutput {
    /// Empties both lists, keeping their capacity.
    pub fn clear(&mut self) {
        self.events.clear();
        self.delivered.clear();
    }

    /// Whether there is nothing to process.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.delivered.is_empty()
    }
}

/// Cumulative network statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetStats {
    /// Datagrams offered by hosts.
    pub datagrams_sent: u64,
    /// Datagrams fully delivered.
    pub datagrams_delivered: u64,
    /// Fragments created.
    pub frags_sent: u64,
    /// Fragments dropped anywhere (queue or loss).
    pub frags_dropped: u64,
    /// Reassembly timeouts (datagram lost to a missing fragment).
    pub reasm_failures: u64,
    /// Fragments built by fragmentation and router re-fragmentation;
    /// `frags_built - datagrams_sent` is the fragmentation amplification.
    pub frags_built: u64,
    /// Fragments duplicated by injected fault windows.
    pub dup_frames: u64,
    /// Fragments delayed by injected reorder windows.
    pub reordered_frames: u64,
    /// Fragments dropped because a link was down (injected flap).
    pub flap_drops: u64,
    /// Fragments whose bytes were damaged by an injected corruption
    /// window (summed from per-link counters).
    pub corrupted_frames: u64,
    /// Datagrams discarded at the receiving host because a checksum
    /// caught in-flight corruption (TCP always; UDP when the sender
    /// computed a checksum).
    pub checksum_drops: u64,
}

struct ReasmState {
    parts: Vec<(usize, MbufChain)>,
    total_len: usize,
    received: usize,
    corrupted: bool,
}

/// The per-host IP reassembly machinery: in-progress datagrams keyed by
/// `(host, src, dgram id)`, the part-list recycling pool, and the
/// reassembly timeout.
///
/// Factored out of [`Network`] so a partitioned world's client domains
/// ([`crate::AccessNet`]) run the identical reassembly code on their own
/// state instead of sharing the hub's map.
pub(crate) struct Reassembler {
    reasm: HashMap<(NodeId, NodeId, u64), ReasmState>,
    timeout: SimDuration,
    /// Cleared part-lists recycled between reassembly states.
    parts_pool: Vec<Vec<(usize, MbufChain)>>,
}

impl Reassembler {
    pub(crate) fn new() -> Self {
        Reassembler {
            reasm: HashMap::new(),
            timeout: SimDuration::from_secs(20),
            parts_pool: Vec::new(),
        }
    }

    /// Whether no datagrams are mid-reassembly.
    #[cfg(test)]
    pub(crate) fn is_empty(&self) -> bool {
        self.reasm.is_empty()
    }

    /// Offers one arrived fragment at `host`.
    ///
    /// Clean completed datagrams are appended to `out.delivered`;
    /// datagrams assembled from damaged fragments are returned instead so
    /// the caller can apply its checksum policy (which may draw from an
    /// RNG this struct deliberately does not own).
    pub(crate) fn offer(
        &mut self,
        now: SimTime,
        host: NodeId,
        frag: Fragment,
        stats: &mut NetStats,
        out: &mut NetOutput,
    ) -> Option<(Datagram, usize)> {
        if frag.is_whole() {
            let dgram = Datagram {
                id: frag.dgram_id,
                src: frag.src,
                dst: frag.dst,
                proto: frag.proto,
                payload: frag.payload,
            };
            if frag.corrupted {
                return Some((dgram, 1));
            }
            stats.datagrams_delivered += 1;
            out.delivered.push(Delivery {
                host,
                dgram,
                frags: 1,
            });
            return None;
        }
        let key = (host, frag.src, frag.dgram_id);
        let fresh = !self.reasm.contains_key(&key);
        let state = self.reasm.entry(key).or_insert_with(|| ReasmState {
            parts: self.parts_pool.pop().unwrap_or_default(),
            total_len: frag.total_len,
            received: 0,
            corrupted: false,
        });
        state.corrupted |= frag.corrupted;
        if fresh {
            out.events.push((
                now + self.timeout,
                NetEvent::ReasmExpire {
                    host,
                    src: frag.src,
                    dgram_id: frag.dgram_id,
                },
            ));
        }
        // Ignore duplicate offsets (a retransmitted fragment).
        if state.parts.iter().any(|&(off, _)| off == frag.offset) {
            return None;
        }
        state.received += frag.payload.len();
        let (src, proto, dgram_id) = (frag.src, frag.proto, frag.dgram_id);
        state.parts.push((frag.offset, frag.payload));
        if state.received < state.total_len {
            return None;
        }
        // Complete: stitch parts in offset order.
        let mut state = self.reasm.remove(&key).expect("state just touched");
        state.parts.sort_by_key(|&(off, _)| off);
        let frags = state.parts.len();
        let mut payload = MbufChain::new();
        for (_, part) in state.parts.drain(..) {
            payload.append_chain(part);
        }
        self.recycle_parts(state.parts);
        let dgram = Datagram {
            id: dgram_id,
            src,
            dst: host,
            proto,
            payload,
        };
        if state.corrupted {
            return Some((dgram, frags));
        }
        stats.datagrams_delivered += 1;
        out.delivered.push(Delivery { host, dgram, frags });
        None
    }

    /// Fires the reassembly timer for `(host, src, dgram_id)`, discarding
    /// any incomplete datagram.
    pub(crate) fn expire(
        &mut self,
        host: NodeId,
        src: NodeId,
        dgram_id: u64,
        stats: &mut NetStats,
    ) {
        if let Some(state) = self.reasm.remove(&(host, src, dgram_id)) {
            stats.reasm_failures += 1;
            self.recycle_parts(state.parts);
        }
    }

    /// Parks a drained part-list for reuse by a future reassembly.
    fn recycle_parts(&mut self, mut parts: Vec<(usize, MbufChain)>) {
        parts.clear();
        if self.parts_pool.len() < 64 {
            self.parts_pool.push(parts);
        }
    }
}

/// Splits a datagram into MTU-sized fragments appended to `frags`.
/// Fragment payload chains share the original's clusters, so this copies
/// (almost) nothing — exactly like the BSD `ip_output` fragmentation
/// path. Shared by the hub [`Network`] and the per-client
/// [`crate::AccessNet`].
pub(crate) fn fragment_into(
    dgram: Datagram,
    mtu: usize,
    frags: &mut Vec<Fragment>,
    meter: &mut CopyMeter,
    stats: &mut NetStats,
) {
    let total_len = dgram.payload.len();
    let hdr_len = dgram.proto.header_len();
    // First fragment carries the transport header.
    let first_cap = round8(mtu - IP_HEADER - hdr_len);
    let rest_cap = round8(mtu - IP_HEADER);
    if hdr_len + total_len + IP_HEADER <= mtu {
        stats.frags_built += 1;
        frags.push(Fragment {
            dgram_id: dgram.id,
            src: dgram.src,
            dst: dgram.dst,
            proto: dgram.proto,
            offset: 0,
            total_len,
            more: false,
            corrupted: false,
            payload: dgram.payload,
        });
        return;
    }
    let mut off = 0;
    while off < total_len || (off == 0 && total_len == 0) {
        let cap = if off == 0 { first_cap } else { rest_cap };
        let take = cap.min(total_len - off);
        let payload = dgram.payload.share_range(off, take, meter);
        let more = off + take < total_len;
        stats.frags_built += 1;
        frags.push(Fragment {
            dgram_id: dgram.id,
            src: dgram.src,
            dst: dgram.dst,
            proto: dgram.proto,
            offset: off,
            total_len,
            more,
            corrupted: false,
            payload,
        });
        off += take;
        if take == 0 {
            break;
        }
    }
}

/// The simulated internetwork.
pub struct Network {
    topo: Topology,
    rng: Rng,
    next_id: u64,
    reasm: Reassembler,
    scratch_meter: CopyMeter,
    stats: NetStats,
    /// Scratch for fragment lists; drained after every use, so
    /// fragmentation reuses one grown buffer instead of allocating a
    /// `Vec<Fragment>` per datagram.
    frag_scratch: Vec<Fragment>,
}

impl Network {
    /// Wraps a routed topology.
    pub fn new(topo: Topology, seed: u64) -> Self {
        Network {
            topo,
            rng: Rng::new(seed),
            next_id: 1,
            reasm: Reassembler::new(),
            scratch_meter: CopyMeter::new(),
            stats: NetStats::default(),
            frag_scratch: Vec::new(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Cumulative statistics. Injected-fault counters are summed from the
    /// per-link counters so experiments can assert a plan actually fired.
    pub fn stats(&self) -> NetStats {
        let mut s = self.stats;
        for link in &self.topo.links {
            let ls = link.stats();
            s.dup_frames += ls.dup_frames;
            s.reordered_frames += ls.reordered_frames;
            s.flap_drops += ls.flap_drops;
            s.corrupted_frames += ls.corrupted_frames;
        }
        s
    }

    /// Allocates a fresh datagram id (the IP identification field).
    pub fn alloc_dgram_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Bytes memory-copied inside the network layer (small-mbuf copies
    /// during fragmentation) since the last call. The sending host charges
    /// these to its CPU.
    pub fn take_copy_bytes(&mut self) -> u64 {
        self.scratch_meter.take().0
    }

    /// Offers a datagram to the network from `dgram.src`. Fragments it to
    /// the first-hop MTU and queues the fragments back to back.
    ///
    /// Allocation-free convenience wrapper callers with their own
    /// `NetOutput` scratch should skip in favor of [`Network::send_into`].
    pub fn send(&mut self, now: SimTime, dgram: Datagram) -> NetOutput {
        let mut out = NetOutput::default();
        self.send_into(now, dgram, &mut out);
        out
    }

    /// [`Network::send`] appending into a caller-owned `NetOutput`.
    pub fn send_into(&mut self, now: SimTime, dgram: Datagram, out: &mut NetOutput) {
        self.stats.datagrams_sent += 1;
        let Some(first_link) = self.topo.route(dgram.src, dgram.dst) else {
            return;
        };
        let mtu = self.topo.link(first_link).params().mtu;
        let mut frags = std::mem::take(&mut self.frag_scratch);
        debug_assert!(frags.is_empty());
        fragment_into(
            dgram,
            mtu,
            &mut frags,
            &mut self.scratch_meter,
            &mut self.stats,
        );
        for frag in frags.drain(..) {
            self.stats.frags_sent += 1;
            self.offer_to_link(now, first_link, frag, out);
        }
        self.frag_scratch = frags;
    }

    fn offer_to_link(
        &mut self,
        now: SimTime,
        link_id: LinkId,
        frag: Fragment,
        out: &mut NetOutput,
    ) {
        let ip_len = frag.ip_len();
        let link = self.topo.link_mut(link_id);
        match link.transmit(now, ip_len, &mut self.rng) {
            TxResult::ArrivesCorrupted(at) => {
                let mut frag = frag;
                frag.corrupted = true;
                out.events.push((
                    at,
                    NetEvent::FragArrive {
                        link: link_id,
                        frag,
                    },
                ));
            }
            TxResult::Arrives(at) => {
                out.events.push((
                    at,
                    NetEvent::FragArrive {
                        link: link_id,
                        frag,
                    },
                ));
            }
            TxResult::Duplicated(first, second) => {
                out.events.push((
                    first,
                    NetEvent::FragArrive {
                        link: link_id,
                        frag: frag.clone(),
                    },
                ));
                out.events.push((
                    second,
                    NetEvent::FragArrive {
                        link: link_id,
                        frag,
                    },
                ));
            }
            TxResult::Dropped => {
                self.stats.frags_dropped += 1;
            }
        }
    }

    /// Processes a network event.
    ///
    /// Allocation-free convenience wrapper callers with their own
    /// `NetOutput` scratch should skip in favor of [`Network::handle_into`].
    pub fn handle(&mut self, now: SimTime, ev: NetEvent) -> NetOutput {
        let mut out = NetOutput::default();
        self.handle_into(now, ev, &mut out);
        out
    }

    /// [`Network::handle`] appending into a caller-owned `NetOutput`.
    pub fn handle_into(&mut self, now: SimTime, ev: NetEvent, out: &mut NetOutput) {
        match ev {
            NetEvent::FragArrive { link, frag } => {
                let node = self.topo.link(link).to();
                self.frag_at_node(now, node, frag, out);
            }
            NetEvent::ReasmExpire {
                host,
                src,
                dgram_id,
            } => {
                self.reasm.expire(host, src, dgram_id, &mut self.stats);
            }
        }
    }

    fn frag_at_node(&mut self, now: SimTime, node: NodeId, frag: Fragment, out: &mut NetOutput) {
        match self.topo.node_kind(node) {
            NodeKind::Router { forward_delay } => {
                let Some(next) = self.topo.route(node, frag.dst) else {
                    self.stats.frags_dropped += 1;
                    return;
                };
                // Re-fragment if the next hop's MTU is smaller.
                let mtu = self.topo.link(next).params().mtu;
                if frag.ip_len() > mtu {
                    let mut subs = std::mem::take(&mut self.frag_scratch);
                    debug_assert!(subs.is_empty());
                    self.refragment_into(frag, mtu, &mut subs);
                    for sub in subs.drain(..) {
                        self.stats.frags_sent += 1;
                        self.offer_to_link(now + forward_delay, next, sub, out);
                    }
                    self.frag_scratch = subs;
                } else {
                    self.offer_to_link(now + forward_delay, next, frag, out);
                }
            }
            NodeKind::Host => {
                if node != frag.dst {
                    self.stats.frags_dropped += 1;
                    return;
                }
                self.reassemble(now, node, frag, out);
            }
        }
    }

    /// Splits an already-fragmented piece further for a smaller MTU,
    /// appending the pieces to `frags`.
    fn refragment_into(&mut self, frag: Fragment, mtu: usize, frags: &mut Vec<Fragment>) {
        let hdr_len = if frag.offset == 0 {
            frag.proto.header_len()
        } else {
            0
        };
        let len = frag.payload.len();
        let mut rel = 0;
        while rel < len {
            let cap = if rel == 0 {
                round8(mtu - IP_HEADER - hdr_len)
            } else {
                round8(mtu - IP_HEADER)
            };
            let take = cap.min(len - rel);
            let payload = frag.payload.share_range(rel, take, &mut self.scratch_meter);
            let abs_off = frag.offset + rel;
            let more = frag.more || abs_off + take < frag.offset + len;
            self.stats.frags_built += 1;
            frags.push(Fragment {
                dgram_id: frag.dgram_id,
                src: frag.src,
                dst: frag.dst,
                proto: frag.proto,
                offset: abs_off,
                total_len: frag.total_len,
                more,
                corrupted: frag.corrupted,
                payload,
            });
            rel += take;
        }
    }

    fn reassemble(&mut self, now: SimTime, host: NodeId, frag: Fragment, out: &mut NetOutput) {
        if let Some((dgram, frags)) = self.reasm.offer(now, host, frag, &mut self.stats, out) {
            self.deliver_corrupted(host, dgram, frags, out);
        }
    }

    /// Fraction of corrupted UDP datagrams that slip past the receiver's
    /// checksum. 4.3BSD shipped with UDP checksums disabled by default
    /// (`udpcksum = 0`), so some damaged datagrams reach the socket layer
    /// and the RPC decoder must cope with arbitrary bytes. TCP checksums
    /// are mandatory, so damaged segments are always discarded and the
    /// sender retransmits cleanly.
    const UDP_CHECKSUM_MISS: f64 = 0.25;

    /// Disposes of a datagram assembled from damaged fragments. TCP and
    /// checksummed UDP drop it (`checksum_drops`); the rest are delivered
    /// with their payload scrambled to deterministic garbage, modeling
    /// what the wire damage did to the bytes.
    fn deliver_corrupted(
        &mut self,
        host: NodeId,
        mut dgram: Datagram,
        frags: usize,
        out: &mut NetOutput,
    ) {
        let survives = match dgram.proto {
            ProtoHeader::Tcp { .. } => false,
            ProtoHeader::Udp { .. } => self.rng.chance(Self::UDP_CHECKSUM_MISS),
        };
        if !survives {
            self.stats.checksum_drops += 1;
            return;
        }
        let len = dgram.payload.len();
        let mut garbage = Vec::with_capacity(len);
        while garbage.len() < len {
            let word = self.rng.next_u64().to_le_bytes();
            let take = word.len().min(len - garbage.len());
            garbage.extend_from_slice(&word[..take]);
        }
        let mut scramble_meter = CopyMeter::new();
        dgram.payload = MbufChain::from_slice(&garbage, &mut scramble_meter);
        self.stats.datagrams_delivered += 1;
        out.delivered.push(Delivery { host, dgram, frags });
    }
}

fn round8(n: usize) -> usize {
    n & !7
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ProtoHeader;
    use crate::topology::presets::{self, Background};
    use renofs_sim::EventQueue;

    fn udp(sport: u16, dport: u16) -> ProtoHeader {
        ProtoHeader::Udp { sport, dport }
    }

    /// Runs the network until quiescent, returning all deliveries.
    fn run(net: &mut Network, mut out: NetOutput) -> Vec<(SimTime, Delivery)> {
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let mut delivered = Vec::new();
        loop {
            for (t, e) in out.events.drain(..) {
                q.push(t, e);
            }
            for d in out.delivered.drain(..) {
                delivered.push((q.now(), d));
            }
            match q.pop() {
                Some((t, ev)) => out = net.handle(t, ev),
                None => break,
            }
        }
        delivered
    }

    fn make_dgram(net: &mut Network, src: NodeId, dst: NodeId, len: usize) -> Datagram {
        let mut meter = CopyMeter::new();
        let data: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
        Datagram {
            id: net.alloc_dgram_id(),
            src,
            dst,
            proto: udp(1023, 2049),
            payload: MbufChain::from_slice(&data, &mut meter),
        }
    }

    #[test]
    fn small_datagram_single_fragment() {
        let (topo, c, s) = presets::same_lan(&Background::quiet());
        let mut net = Network::new(topo, 7);
        let d = make_dgram(&mut net, c, s, 120);
        let out = net.send(SimTime::ZERO, d);
        let delivered = run(&mut net, out);
        assert_eq!(delivered.len(), 1);
        assert_eq!(delivered[0].1.host, s);
        assert_eq!(delivered[0].1.dgram.payload.len(), 120);
        assert_eq!(net.stats().frags_sent, 1);
    }

    #[test]
    fn eight_k_fragments_to_six_on_ethernet() {
        let (topo, c, s) = presets::same_lan(&Background::quiet());
        let mut net = Network::new(topo, 8);
        let d = make_dgram(&mut net, c, s, 8192 + 120);
        let out = net.send(SimTime::ZERO, d);
        let delivered = run(&mut net, out);
        assert_eq!(delivered.len(), 1);
        // 8312 bytes at ~1472/frag = 6 fragments — the paper's "6 IP
        // fragments for an Ethernet".
        assert_eq!(net.stats().frags_sent, 6);
        let got = delivered[0].1.dgram.payload.to_vec_for_test();
        let want: Vec<u8> = (0..8312).map(|i| (i % 256) as u8).collect();
        assert_eq!(got, want, "reassembly restores the exact bytes");
    }

    #[test]
    fn delivery_through_routers() {
        let (topo, c, s) = presets::token_ring_path(&Background::quiet());
        let mut net = Network::new(topo, 9);
        let d = make_dgram(&mut net, c, s, 8192);
        let out = net.send(SimTime::ZERO, d);
        let delivered = run(&mut net, out);
        assert_eq!(delivered.len(), 1);
        let t = delivered[0].0;
        // Must include at least 2 router forward delays + serializations.
        assert!(t > SimTime::from_millis(2), "arrived at {t}");
    }

    #[test]
    fn refragmentation_for_small_mtu_hop() {
        let (topo, c, s) = presets::slow_link_path(&Background::quiet());
        let mut net = Network::new(topo, 10);
        let d = make_dgram(&mut net, c, s, 2048);
        let out = net.send(SimTime::ZERO, d);
        let delivered = run(&mut net, out);
        assert_eq!(delivered.len(), 1, "datagram survives re-fragmentation");
        assert_eq!(delivered[0].1.dgram.payload.len(), 2048);
        // 2 fragments on Ethernet, re-split to 576-byte MTU at the serial
        // hop: strictly more fragments total.
        assert!(net.stats().frags_sent > 2);
    }

    #[test]
    fn lost_fragment_loses_whole_datagram() {
        let (mut topo, c, s) = presets::same_lan(&Background::quiet());
        // Force loss on the first link direction.
        topo.links[0].params_mut_for_test().loss_prob = 0.35;
        let mut net = Network::new(topo, 11);
        let mut complete = 0;
        let mut sent = 0;
        for i in 0..60 {
            let d = make_dgram(&mut net, c, s, 8192);
            sent += 1;
            let out = net.send(SimTime::from_millis(i * 200), d);
            complete += run(&mut net, out).len();
        }
        // P(all 6 fragments survive) = 0.65^6 ~ 7.5%; allow slack.
        assert!(complete < sent / 3, "only {complete}/{sent} should survive");
        assert!(net.stats().frags_dropped > 0);
    }

    #[test]
    fn reassembly_timeout_cleans_up() {
        let (mut topo, c, s) = presets::same_lan(&Background::quiet());
        topo.links[0].params_mut_for_test().loss_prob = 0.5;
        let mut net = Network::new(topo, 12);
        let mut failures_possible = false;
        for i in 0..40 {
            let d = make_dgram(&mut net, c, s, 8192);
            let out = net.send(SimTime::from_secs(i * 60), d);
            let delivered = run(&mut net, out);
            if delivered.is_empty() {
                failures_possible = true;
            }
        }
        assert!(failures_possible);
        assert!(net.stats().reasm_failures > 0, "timeouts must have fired");
        assert!(net.reasm.is_empty(), "no leaked reassembly state");
    }

    #[test]
    fn corrupted_udp_is_dropped_or_scrambled_never_intact() {
        use crate::faults::FaultPlan;
        let (mut topo, c, s) = presets::same_lan(&Background::quiet());
        let plan = FaultPlan::new().corrupt(SimTime::ZERO, 1.0, SimDuration::from_secs(3600));
        topo.apply_faults(&plan, c, s);
        let mut net = Network::new(topo, 21);
        let want: Vec<u8> = (0..512usize).map(|i| (i % 256) as u8).collect();
        let mut delivered_scrambled = 0;
        let mut sent = 0;
        for i in 0..80 {
            let d = make_dgram(&mut net, c, s, 512);
            sent += 1;
            let out = net.send(SimTime::from_millis(i * 50), d);
            for (_, dv) in run(&mut net, out) {
                let got = dv.dgram.payload.to_vec_for_test();
                assert_eq!(got.len(), want.len(), "length preserved");
                assert_ne!(got, want, "corrupted payload must not match original");
                delivered_scrambled += 1;
            }
        }
        let stats = net.stats();
        assert_eq!(stats.corrupted_frames, sent, "every frame corrupted at p=1");
        assert!(stats.checksum_drops > 0, "some datagrams checksum-dropped");
        assert!(
            delivered_scrambled > 0,
            "some slip past disabled UDP checksums"
        );
        assert_eq!(
            stats.checksum_drops + delivered_scrambled,
            sent,
            "every corrupted datagram is either dropped or scrambled"
        );
    }

    #[test]
    fn corrupted_tcp_is_always_checksum_dropped() {
        use crate::faults::FaultPlan;
        use crate::packet::TcpFlags;
        let (mut topo, c, s) = presets::same_lan(&Background::quiet());
        let plan = FaultPlan::new().corrupt(SimTime::ZERO, 1.0, SimDuration::from_secs(3600));
        topo.apply_faults(&plan, c, s);
        let mut net = Network::new(topo, 22);
        let mut meter = CopyMeter::new();
        for i in 0..40u64 {
            let d = Datagram {
                id: net.alloc_dgram_id(),
                src: c,
                dst: s,
                proto: ProtoHeader::Tcp {
                    sport: 1023,
                    dport: 2049,
                    seq: i as u32,
                    ack: 0,
                    window: 4096,
                    flags: TcpFlags::default(),
                },
                payload: MbufChain::from_slice(&[0xA5u8; 256], &mut meter),
            };
            let out = net.send(SimTime::from_millis(i * 50), d);
            let delivered = run(&mut net, out);
            assert!(delivered.is_empty(), "TCP checksums catch all corruption");
        }
        let stats = net.stats();
        assert_eq!(stats.checksum_drops, 40);
        assert_eq!(stats.datagrams_delivered, 0);
    }

    #[test]
    fn corruption_of_one_fragment_taints_the_reassembled_datagram() {
        use crate::faults::FaultPlan;
        // Corrupt with moderate probability so multi-fragment datagrams
        // usually have a mix of clean and damaged fragments.
        let (mut topo, c, s) = presets::same_lan(&Background::quiet());
        let plan = FaultPlan::new().corrupt(SimTime::ZERO, 0.3, SimDuration::from_secs(3600));
        topo.apply_faults(&plan, c, s);
        let mut net = Network::new(topo, 23);
        let want: Vec<u8> = (0..8312usize).map(|i| (i % 256) as u8).collect();
        let mut intact = 0;
        let mut scrambled = 0;
        for i in 0..60 {
            let d = make_dgram(&mut net, c, s, 8312);
            let out = net.send(SimTime::from_millis(i * 200), d);
            for (_, dv) in run(&mut net, out) {
                if dv.dgram.payload.to_vec_for_test() == want {
                    intact += 1;
                } else {
                    scrambled += 1;
                }
            }
        }
        let stats = net.stats();
        assert!(stats.corrupted_frames > 0);
        assert!(intact > 0, "clean datagrams still get through at p=0.3");
        assert!(
            scrambled + stats.checksum_drops as usize > 0,
            "tainted datagrams are dropped or scrambled"
        );
    }

    #[test]
    fn serial_link_is_slow_for_big_datagrams() {
        let (topo, c, s) = presets::slow_link_path(&Background::quiet());
        let mut net = Network::new(topo, 13);
        let d = make_dgram(&mut net, c, s, 8192);
        let out = net.send(SimTime::ZERO, d);
        let delivered = run(&mut net, out);
        assert_eq!(delivered.len(), 1);
        let t = delivered[0].0;
        // 8K over 56 Kbit/s is over a second of serialization alone —
        // the paper's "upper bound < 1/sec" footnote.
        assert!(
            t > SimTime::from_millis(1100),
            "8K datagram arrived too fast: {t}"
        );
    }
}
