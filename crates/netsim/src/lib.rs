//! Network simulation: links, routers, IP fragmentation and reassembly.
//!
//! The paper ran NFS over three internetwork configurations:
//!
//! 1. client and server on the same uncongested Ethernet;
//! 2. two Ethernets joined by an 80 Mbit/s token ring and two IP routers;
//! 3. the same plus a 56 Kbit/s point-to-point link and a third router.
//!
//! Its transport findings all trace back to mechanics reproduced here: an
//! 8 KB read/write RPC leaves the host as ~6 IP fragments sized to the
//! interconnect MTU, any one lost fragment costs the entire datagram
//! (`[Kent87b]` "Fragmentation Considered Harmful"), and store-and-forward
//! routers with finite queues turn bursts of back-to-back fragments into
//! queueing delay and drops.
//!
//! The crate is deterministic and event-driven: [`Network::send`] and
//! [`Network::handle`] return follow-on events for the caller's event
//! queue plus any datagrams that completed reassembly at their
//! destination.

pub mod access;
pub mod checksum;
pub mod faults;
pub mod link;
pub mod network;
pub mod nic;
pub mod packet;
pub mod topology;

pub use access::{AccessCarve, AccessNet};
pub use checksum::internet_checksum;
pub use faults::{FaultEvent, FaultKind, FaultPlan, FaultWindows};
pub use link::{LinkParams, LinkStats, TxResult};
pub use network::{Delivery, NetEvent, NetOutput, NetStats, Network};
pub use nic::{NicConfig, NicProfile, TxCopyMode};
pub use packet::{Datagram, Fragment, ProtoHeader, TcpFlags, IP_HEADER, TCP_HEADER, UDP_HEADER};
pub use topology::{LinkId, NodeId, NodeKind, Topology};
