//! Network interface CPU-cost model (the Section 3 experiment).
//!
//! Kernel profiling in the paper found the routine copying mbuf data into
//! the interface's transmit buffers at the top of the CPU list, with over
//! a third of server cycles in low-level interface handling. Two changes
//! were made:
//!
//! 1. map mbuf clusters into the transmit buffers by page-table-entry
//!    swaps instead of copying ([`TxCopyMode::PageMap`]);
//! 2. disable the transmit interrupt and reclaim buffers in the startup
//!    routine (`tx_interrupts: false`).
//!
//! Together they cut server CPU overhead by about 12 %. This module
//! prices both configurations so the `section3` experiment can reproduce
//! the ablation.

use renofs_mbuf::MbufChain;
use renofs_sim::SimDuration;

/// How transmit data gets into interface buffers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxCopyMode {
    /// Memory-to-memory copy of every byte (the stock driver).
    Copy,
    /// Page-table-entry swap per mapped cluster; only non-cluster bytes
    /// (headers in small mbufs) are copied.
    PageMap,
}

/// Per-operation costs of an interface, in MicroVAXII time.
#[derive(Clone, Copy, Debug)]
pub struct NicProfile {
    /// Name for reports.
    pub name: &'static str,
    /// Fixed transmit start-up cost per fragment (descriptor setup,
    /// register pokes on the DEQNA).
    pub tx_startup: SimDuration,
    /// Per-byte cost of copying mbuf data to transmit buffers.
    pub copy_per_byte: SimDuration,
    /// Cost of one page-table-entry swap (maps one cluster).
    pub pte_swap: SimDuration,
    /// Transmit-complete interrupt service cost (buffer release and I/O
    /// statistics), when transmit interrupts are enabled.
    pub tx_interrupt: SimDuration,
    /// Receive interrupt service cost per fragment.
    pub rx_interrupt: SimDuration,
    /// Per-byte cost of copying received data into mbufs.
    pub rx_copy_per_byte: SimDuration,
}

impl NicProfile {
    /// The DEQNA Q-bus Ethernet interface of the paper's MicroVAXIIs —
    /// which the paper calls "*real slow*".
    pub const DEQNA: NicProfile = NicProfile {
        name: "DEQNA",
        tx_startup: SimDuration::from_micros(250),
        copy_per_byte: SimDuration::from_nanos(500),
        pte_swap: SimDuration::from_micros(40),
        tx_interrupt: SimDuration::from_micros(180),
        rx_interrupt: SimDuration::from_micros(220),
        rx_copy_per_byte: SimDuration::from_nanos(500),
    };
}

/// A configured interface: profile plus the two Section 3 knobs.
#[derive(Clone, Copy, Debug)]
pub struct NicConfig {
    /// Hardware cost profile.
    pub profile: NicProfile,
    /// Copy or map transmit data.
    pub copy_mode: TxCopyMode,
    /// Whether the transmit-complete interrupt is taken.
    pub tx_interrupts: bool,
}

impl NicConfig {
    /// The stock 4.3BSD driver: copy everything, take every interrupt.
    pub fn stock() -> Self {
        NicConfig {
            profile: NicProfile::DEQNA,
            copy_mode: TxCopyMode::Copy,
            tx_interrupts: true,
        }
    }

    /// The paper's tuned driver: cluster mapping, no transmit interrupt.
    pub fn tuned() -> Self {
        NicConfig {
            profile: NicProfile::DEQNA,
            copy_mode: TxCopyMode::PageMap,
            tx_interrupts: false,
        }
    }

    /// CPU time to hand one outgoing fragment (its payload described by
    /// `chain`) to the interface.
    ///
    /// Under [`TxCopyMode::PageMap`], cluster mbufs cost one PTE swap
    /// each; small-mbuf bytes (headers) are still copied. Under
    /// [`TxCopyMode::Copy`], every byte is copied. The transmit interrupt
    /// cost, when enabled, is folded in here — it is CPU spent per
    /// fragment either way.
    pub fn tx_cost(&self, chain: &MbufChain) -> SimDuration {
        let p = &self.profile;
        let mut cost = p.tx_startup;
        match self.copy_mode {
            TxCopyMode::Copy => {
                cost += p.copy_per_byte * chain.len() as u64;
            }
            TxCopyMode::PageMap => {
                for m in chain.mbufs() {
                    if m.is_empty() {
                        continue;
                    }
                    if m.is_cluster() {
                        cost += p.pte_swap;
                    } else {
                        cost += p.copy_per_byte * m.len() as u64;
                    }
                }
            }
        }
        if self.tx_interrupts {
            cost += p.tx_interrupt;
        }
        cost
    }

    /// CPU time to hand one outgoing fragment when only its size (not
    /// its mbuf layout) is known; assumes the payload is cluster-backed
    /// past the first small mbuf.
    pub fn tx_cost_sized(&self, bytes: usize) -> SimDuration {
        let p = &self.profile;
        let mut cost = p.tx_startup;
        match self.copy_mode {
            TxCopyMode::Copy => {
                cost += p.copy_per_byte * bytes as u64;
            }
            TxCopyMode::PageMap => {
                let header = bytes.min(renofs_mbuf::MLEN);
                let clusters = bytes.saturating_sub(header).div_ceil(renofs_mbuf::MCLBYTES);
                cost += p.copy_per_byte * header as u64;
                cost += p.pte_swap * clusters.max(if bytes > header { 1 } else { 0 }) as u64;
            }
        }
        if self.tx_interrupts {
            cost += p.tx_interrupt;
        }
        cost
    }

    /// CPU time to receive one fragment of `bytes` bytes (interrupt
    /// service plus copy into mbufs).
    pub fn rx_cost(&self, bytes: usize) -> SimDuration {
        self.profile.rx_interrupt + self.profile.rx_copy_per_byte * bytes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renofs_mbuf::CopyMeter;

    #[test]
    fn pagemap_is_much_cheaper_for_clusters() {
        let mut meter = CopyMeter::new();
        let chain = MbufChain::from_slice(&vec![0u8; 1408], &mut meter);
        let stock = NicConfig::stock();
        let tuned = NicConfig::tuned();
        let c = stock.tx_cost(&chain);
        let m = tuned.tx_cost(&chain);
        assert!(
            m.as_nanos() * 2 < c.as_nanos(),
            "mapping ({m:?}) should be far cheaper than copying ({c:?})"
        );
    }

    #[test]
    fn small_payload_still_copied_under_pagemap() {
        let mut meter = CopyMeter::new();
        let chain = MbufChain::from_slice(b"tiny", &mut meter);
        let tuned = NicConfig::tuned();
        let cost = tuned.tx_cost(&chain);
        // startup + 4 bytes copied; no PTE swap, no tx interrupt.
        let expect = NicProfile::DEQNA.tx_startup + NicProfile::DEQNA.copy_per_byte * 4;
        assert_eq!(cost.as_nanos(), expect.as_nanos());
    }

    #[test]
    fn disabling_tx_interrupt_saves_its_cost() {
        let mut meter = CopyMeter::new();
        let chain = MbufChain::from_slice(&vec![0u8; 512], &mut meter);
        let with = NicConfig {
            tx_interrupts: true,
            ..NicConfig::tuned()
        };
        let without = NicConfig::tuned();
        let diff = with.tx_cost(&chain) - without.tx_cost(&chain);
        assert_eq!(diff.as_nanos(), NicProfile::DEQNA.tx_interrupt.as_nanos());
    }

    #[test]
    fn sized_estimate_close_to_exact() {
        let mut meter = CopyMeter::new();
        let data = vec![9u8; 1408];
        let chain = MbufChain::from_slice(&data, &mut meter);
        for cfg in [NicConfig::stock(), NicConfig::tuned()] {
            let exact = cfg.tx_cost(&chain);
            let sized = cfg.tx_cost_sized(1408);
            let ratio = exact.as_nanos() as f64 / sized.as_nanos() as f64;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{:?} estimate off: exact={exact:?} sized={sized:?}",
                cfg.copy_mode
            );
        }
    }

    #[test]
    fn rx_cost_scales_with_bytes() {
        let cfg = NicConfig::stock();
        assert!(cfg.rx_cost(1500) > cfg.rx_cost(100));
        assert!(cfg.rx_cost(0) >= NicProfile::DEQNA.rx_interrupt);
    }
}
