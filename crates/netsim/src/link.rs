//! Directed links: serialization, queueing, background load and loss.

use renofs_sim::{Rng, SimDuration, SimTime};

use crate::faults::FaultWindows;
use crate::topology::NodeId;

/// Static parameters of one link direction.
#[derive(Clone, Debug)]
pub struct LinkParams {
    /// Raw bandwidth in bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub prop_delay: SimDuration,
    /// Maximum transmission unit (IP bytes per frame).
    pub mtu: usize,
    /// Per-frame overhead bytes (preamble, MAC header, CRC, gap).
    pub frame_overhead: usize,
    /// Transmit queue capacity in bytes; frames arriving when the backlog
    /// exceeds this are dropped (drop-tail).
    pub queue_capacity_bytes: usize,
    /// Independent per-frame corruption/loss probability.
    pub loss_prob: f64,
    /// Fraction of the link consumed by background cross-traffic. Modeled
    /// as M/M/1-style random extra queueing per frame, matching the
    /// paper's uncontrolled production-network loads.
    pub bg_util: f64,
}

impl LinkParams {
    /// Time to serialize `wire_bytes` onto this link.
    pub fn tx_time(&self, wire_bytes: usize) -> SimDuration {
        let bits = (wire_bytes + self.frame_overhead) as u64 * 8;
        SimDuration::from_secs_f64(bits as f64 / self.bandwidth_bps as f64)
    }
}

/// Cumulative per-direction link statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Frames accepted for transmission.
    pub frames: u64,
    /// Payload (IP) bytes accepted.
    pub bytes: u64,
    /// Frames dropped by queue overflow.
    pub queue_drops: u64,
    /// Frames dropped by random loss.
    pub random_drops: u64,
    /// Frames dropped because the link was down (injected flap).
    pub flap_drops: u64,
    /// Frames duplicated by an injected duplication window.
    pub dup_frames: u64,
    /// Frames given extra delay by an injected reorder window.
    pub reordered_frames: u64,
    /// Frames whose bytes were corrupted by an injected corruption window.
    pub corrupted_frames: u64,
    /// Total scheduled downtime from the fault plan's finite windows.
    pub downtime: SimDuration,
}

/// Outcome of offering a frame to a link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TxResult {
    /// Frame will arrive at the far end at this time.
    Arrives(SimTime),
    /// Frame was duplicated by an injected fault: two copies arrive,
    /// at these times.
    Duplicated(SimTime, SimTime),
    /// Frame arrives at this time with its bytes damaged in flight; the
    /// receiver's checksum handling decides whether the damage is caught.
    ArrivesCorrupted(SimTime),
    /// Frame was dropped (queue overflow, random loss, or a down link).
    Dropped,
}

/// One direction of a link.
pub(crate) struct Link {
    from: NodeId,
    to: NodeId,
    params: LinkParams,
    busy_until: SimTime,
    stats: LinkStats,
    faults: FaultWindows,
}

impl Link {
    pub(crate) fn new(from: NodeId, to: NodeId, params: LinkParams) -> Self {
        Link {
            from,
            to,
            params,
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
            faults: FaultWindows::default(),
        }
    }

    /// Installs compiled fault windows on this link direction.
    pub(crate) fn set_faults(&mut self, faults: FaultWindows) {
        self.faults = faults;
    }

    pub(crate) fn from(&self) -> NodeId {
        self.from
    }

    pub(crate) fn to(&self) -> NodeId {
        self.to
    }

    pub(crate) fn params(&self) -> &LinkParams {
        &self.params
    }

    pub(crate) fn stats(&self) -> LinkStats {
        let mut s = self.stats;
        s.downtime = self.faults.total_downtime();
        s
    }

    /// Test-only access to mutate parameters after topology construction
    /// (e.g. to inject loss on one link direction).
    #[cfg(test)]
    pub(crate) fn params_mut_for_test(&mut self) -> &mut LinkParams {
        &mut self.params
    }

    /// Whether transmits on this link never consume RNG draws: no random
    /// loss, no background cross-traffic, no fault windows. `chance(0)`
    /// and a zero-utilization background wait short-circuit without
    /// drawing, so such a link can move into a client domain without
    /// perturbing the hub's shared RNG stream.
    pub(crate) fn is_draw_free(&self) -> bool {
        self.params.loss_prob <= 0.0 && self.params.bg_util <= 0.0 && self.faults.is_empty()
    }

    /// Whether this link has no installed fault windows.
    pub(crate) fn faults_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A fresh, stateless copy of this link direction: same endpoints and
    /// parameters, empty statistics, idle wire. A partitioned world hands
    /// the copy to the client domain as its private uplink while the
    /// original stays in the hub topology for route lookups.
    pub(crate) fn fresh_copy(&self) -> Link {
        Link::new(self.from, self.to, self.params.clone())
    }

    /// Offers a frame of `ip_bytes` to the link at `now`.
    ///
    /// With no fault windows active the code path (and in particular the
    /// RNG draw sequence) is identical to a fault-free link, so an empty
    /// [`FaultWindows`] leaves every run byte-reproducible against
    /// pre-fault-injection builds.
    pub(crate) fn transmit(&mut self, now: SimTime, ip_bytes: usize, rng: &mut Rng) -> TxResult {
        if !self.faults.is_empty() && self.faults.is_down(now) {
            self.stats.flap_drops += 1;
            return TxResult::Dropped;
        }
        // Backlog currently waiting (bytes implied by the busy horizon).
        let backlog = self.busy_until.since(now);
        let backlog_bytes =
            (backlog.as_secs_f64() * self.params.bandwidth_bps as f64 / 8.0) as usize;
        if backlog_bytes + ip_bytes > self.params.queue_capacity_bytes {
            self.stats.queue_drops += 1;
            return TxResult::Dropped;
        }
        let loss = (self.params.loss_prob + self.faults.extra_loss(now)).min(1.0);
        if rng.chance(loss) {
            // The frame still occupies the wire; it is lost, not unsent.
            self.occupy(now, ip_bytes, rng);
            self.stats.random_drops += 1;
            return TxResult::Dropped;
        }
        let done = self.occupy(now, ip_bytes, rng);
        self.stats.frames += 1;
        self.stats.bytes += ip_bytes as u64;
        let mut arrival = done + self.params.prop_delay + self.faults.extra_delay(now);
        if let Some((prob, max_extra)) = self.faults.reorder_at(now) {
            if rng.chance(prob) {
                let span = max_extra.as_nanos().max(1);
                arrival += SimDuration::from_nanos(rng.gen_range(0, span) + 1);
                self.stats.reordered_frames += 1;
            }
        }
        if let Some(prob) = self.faults.corrupt_prob(now) {
            if rng.chance(prob) {
                self.stats.corrupted_frames += 1;
                // A damaged frame is never also duplicated: the bridge
                // replay model applies to intact frames only.
                return TxResult::ArrivesCorrupted(arrival);
            }
        }
        if let Some(prob) = self.faults.dup_prob(now) {
            if rng.chance(prob) {
                self.stats.dup_frames += 1;
                // The duplicate trails the original by one serialization
                // time, as if a bridge replayed it back to back.
                return TxResult::Duplicated(arrival, arrival + self.params.tx_time(ip_bytes));
            }
        }
        TxResult::Arrives(arrival)
    }

    /// Serializes the frame (plus any sampled background traffic ahead of
    /// it) and returns the time serialization completes.
    fn occupy(&mut self, now: SimTime, ip_bytes: usize, rng: &mut Rng) -> SimTime {
        let service = self.params.tx_time(ip_bytes);
        let bg = self.background_wait(service, rng);
        let start = now.max(self.busy_until) + bg;
        let done = start + service;
        self.busy_until = done;
        done
    }

    /// Extra wait caused by background cross-traffic: an exponential with
    /// the M/M/1 mean rho/(1-rho) service times.
    fn background_wait(&self, service: SimDuration, rng: &mut Rng) -> SimDuration {
        let rho = self.params.bg_util;
        if rho <= 0.0 {
            return SimDuration::ZERO;
        }
        let mean = service.as_secs_f64() * rho / (1.0 - rho);
        SimDuration::from_secs_f64(rng.exp(mean))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet_params() -> LinkParams {
        LinkParams {
            bandwidth_bps: 10_000_000,
            prop_delay: SimDuration::from_micros(50),
            mtu: 1500,
            frame_overhead: 26,
            queue_capacity_bytes: 60_000,
            loss_prob: 0.0,
            bg_util: 0.0,
        }
    }

    #[test]
    fn tx_time_matches_bandwidth() {
        let p = quiet_params();
        // (1500 + 26) * 8 bits at 10 Mbit/s = 1220.8 us.
        let t = p.tx_time(1500);
        assert!((t.as_micros() as i64 - 1220).abs() <= 1, "{t:?}");
    }

    #[test]
    fn frames_serialize_back_to_back() {
        let mut rng = Rng::new(1);
        let mut link = Link::new(NodeId(0), NodeId(1), quiet_params());
        let t0 = SimTime::ZERO;
        let a1 = match link.transmit(t0, 1500, &mut rng) {
            TxResult::Arrives(t) => t,
            _ => panic!("dropped"),
        };
        let a2 = match link.transmit(t0, 1500, &mut rng) {
            TxResult::Arrives(t) => t,
            _ => panic!("dropped"),
        };
        let gap = a2 - a1;
        let service = quiet_params().tx_time(1500);
        assert_eq!(gap.as_nanos(), service.as_nanos(), "second frame queues");
    }

    #[test]
    fn queue_overflow_drops() {
        let mut rng = Rng::new(2);
        let mut p = quiet_params();
        p.queue_capacity_bytes = 4000;
        let mut link = Link::new(NodeId(0), NodeId(1), p);
        let t0 = SimTime::ZERO;
        let mut drops = 0;
        for _ in 0..6 {
            if link.transmit(t0, 1500, &mut rng) == TxResult::Dropped {
                drops += 1;
            }
        }
        assert!(
            drops >= 3,
            "only ~2 frames fit in 4000 bytes, got {drops} drops"
        );
        assert_eq!(link.stats().queue_drops, drops);
    }

    #[test]
    fn random_loss_rate_is_plausible() {
        let mut rng = Rng::new(3);
        let mut p = quiet_params();
        p.loss_prob = 0.1;
        p.queue_capacity_bytes = usize::MAX;
        let mut link = Link::new(NodeId(0), NodeId(1), p);
        let mut lost = 0;
        for i in 0..5000 {
            let t = SimTime::from_millis(i * 2);
            if link.transmit(t, 100, &mut rng) == TxResult::Dropped {
                lost += 1;
            }
        }
        assert!((400..600).contains(&lost), "lost {lost} of 5000 at p=0.1");
    }

    #[test]
    fn background_load_adds_delay() {
        let mut rng = Rng::new(4);
        let mut busy = quiet_params();
        busy.bg_util = 0.4;
        let mut quiet_link = Link::new(NodeId(0), NodeId(1), quiet_params());
        let mut busy_link = Link::new(NodeId(0), NodeId(1), busy);
        let mut quiet_total = 0u64;
        let mut busy_total = 0u64;
        for i in 0..500 {
            let t = SimTime::from_millis(i * 10);
            if let TxResult::Arrives(a) = quiet_link.transmit(t, 1500, &mut rng) {
                quiet_total += (a - t).as_nanos();
            }
            if let TxResult::Arrives(a) = busy_link.transmit(t, 1500, &mut rng) {
                busy_total += (a - t).as_nanos();
            }
        }
        assert!(
            busy_total > quiet_total * 5 / 4,
            "40% background should add >25% delay ({busy_total} vs {quiet_total})"
        );
    }

    #[test]
    fn lost_frames_still_occupy_the_wire() {
        let mut rng = Rng::new(5);
        let mut p = quiet_params();
        p.loss_prob = 1.0;
        let mut link = Link::new(NodeId(0), NodeId(1), p);
        let t0 = SimTime::ZERO;
        assert_eq!(link.transmit(t0, 1500, &mut rng), TxResult::Dropped);
        // The wire was busy even though the frame was lost.
        assert!(link.busy_until > t0);
    }
}
