//! The client-domain slice of a partitioned network.
//!
//! A conservative-PDES world gives each client machine its own simulation
//! domain. The network state that domain needs to own is exactly the
//! client's *access network*: the uplink wire it serializes requests onto
//! and the reassembly state for replies arriving at its host. Everything
//! past the first hop — routers, the trunk, the server's reassembly —
//! stays in the hub domain with the shared [`Network`].
//!
//! The carve is only legal when the client's slice is **draw-free**: the
//! uplink has no loss, no background traffic and no fault windows (so
//! transmits consume no RNG), and no link on the server→client path can
//! corrupt a frame (so reply reassembly never reaches the checksum-miss
//! draw). [`Network::carve_access`] checks both conditions and refuses
//! the carve otherwise; non-carvable worlds simply stay monolithic. This
//! keeps the hub's single RNG stream byte-for-byte identical to the
//! unpartitioned execution.

use renofs_mbuf::CopyMeter;
use renofs_sim::pdes::MIN_LOOKAHEAD;
use renofs_sim::{Rng, SimDuration, SimTime};

use crate::link::Link;
use crate::network::{fragment_into, NetEvent, NetOutput, NetStats, Network, Reassembler};
use crate::packet::{Datagram, Fragment};
use crate::topology::{LinkId, NodeId, NodeKind};

/// A successfully carved client access network plus the conservative
/// lookahead each direction of the boundary publishes.
pub struct AccessCarve {
    /// The client domain's private network slice.
    pub access: AccessNet,
    /// Client→hub lookahead: the uplink's propagation delay. A frame the
    /// client offers at `t` cannot arrive at the far end before
    /// `t + lookahead_up`.
    pub lookahead_up: SimDuration,
    /// Hub→client lookahead: the final (router→client) link's propagation
    /// delay, bounding how early any hub action can be seen by the client.
    pub lookahead_down: SimDuration,
}

/// One client machine's private network state: its uplink and its reply
/// reassembly. See the module docs for when this carve is legal.
pub struct AccessNet {
    uplink: Link,
    uplink_id: LinkId,
    client: NodeId,
    next_id: u64,
    reasm: Reassembler,
    stats: NetStats,
    frag_scratch: Vec<Fragment>,
    meter: CopyMeter,
    /// Never drawn from — the carve predicate guarantees every code path
    /// this struct runs is draw-free; the generator only satisfies the
    /// shared transmit signature.
    rng: Rng,
}

impl AccessNet {
    /// The node this access network belongs to.
    pub fn client(&self) -> NodeId {
        self.client
    }

    /// Allocates a datagram id from this client's private counter.
    /// Reassembly keys include the source node, so per-domain counters
    /// cannot collide with the hub's or each other's.
    pub fn alloc_dgram_id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// Offers a datagram from the client onto its uplink: fragments to
    /// the uplink MTU and serializes the fragments back to back.
    ///
    /// Every event appended to `out.events` is a [`NetEvent::FragArrive`]
    /// at the uplink's far end — a **cross-domain message** the caller
    /// must deliver to the hub domain, stamped at least `lookahead_up`
    /// after `now`.
    pub fn send_into(&mut self, now: SimTime, dgram: Datagram, out: &mut NetOutput) {
        debug_assert_eq!(dgram.src, self.client);
        self.stats.datagrams_sent += 1;
        let mtu = self.uplink.params().mtu;
        let mut frags = std::mem::take(&mut self.frag_scratch);
        debug_assert!(frags.is_empty());
        fragment_into(dgram, mtu, &mut frags, &mut self.meter, &mut self.stats);
        for frag in frags.drain(..) {
            self.stats.frags_sent += 1;
            let ip_len = frag.ip_len();
            match self.uplink.transmit(now, ip_len, &mut self.rng) {
                crate::link::TxResult::Arrives(at) => {
                    out.events.push((
                        at,
                        NetEvent::FragArrive {
                            link: self.uplink_id,
                            frag,
                        },
                    ));
                }
                crate::link::TxResult::Dropped => {
                    // Drop-tail queue overflow; a draw-free link cannot
                    // drop any other way.
                    self.stats.frags_dropped += 1;
                }
                other => unreachable!("draw-free uplink produced {other:?}"),
            }
        }
        self.frag_scratch = frags;
    }

    /// Processes a client-domain network event: a reply fragment arriving
    /// at the client host, or a local reassembly timer.
    ///
    /// Unlike [`send_into`](Self::send_into), everything appended to
    /// `out` here is domain-local: `ReasmExpire` follow-ons go back into
    /// this domain's queue and deliveries are consumed by this client.
    pub fn handle_into(&mut self, now: SimTime, ev: NetEvent, out: &mut NetOutput) {
        match ev {
            NetEvent::FragArrive { frag, .. } => {
                debug_assert_eq!(frag.dst, self.client);
                debug_assert!(
                    !frag.corrupted,
                    "carve predicate forbids corruption on the client-bound path"
                );
                let corrupted = self
                    .reasm
                    .offer(now, self.client, frag, &mut self.stats, out);
                debug_assert!(corrupted.is_none(), "corrupted datagram in a carved domain");
            }
            NetEvent::ReasmExpire {
                host,
                src,
                dgram_id,
            } => {
                debug_assert_eq!(host, self.client);
                self.reasm.expire(host, src, dgram_id, &mut self.stats);
            }
        }
    }

    /// This domain's network statistics shard; the world folds shards
    /// into the hub's totals so reported stats match the monolithic run.
    pub fn stats(&self) -> NetStats {
        self.stats
    }
}

impl NetStats {
    /// Adds another shard's counters into this one (partitioned worlds
    /// keep per-domain shards and fold them for reporting).
    pub fn absorb(&mut self, other: &NetStats) {
        self.datagrams_sent += other.datagrams_sent;
        self.datagrams_delivered += other.datagrams_delivered;
        self.frags_sent += other.frags_sent;
        self.frags_dropped += other.frags_dropped;
        self.reasm_failures += other.reasm_failures;
        self.frags_built += other.frags_built;
        self.dup_frames += other.dup_frames;
        self.reordered_frames += other.reordered_frames;
        self.flap_drops += other.flap_drops;
        self.corrupted_frames += other.corrupted_frames;
        self.checksum_drops += other.checksum_drops;
    }
}

impl Network {
    /// The node at which a network event executes: where an arriving
    /// fragment lands, or the host whose reassembly timer fires. This is
    /// the partitioned world's routing function for follow-on events.
    pub fn event_node(&self, ev: &NetEvent) -> NodeId {
        match ev {
            NetEvent::FragArrive { link, .. } => self.topology().link(*link).to(),
            NetEvent::ReasmExpire { host, .. } => *host,
        }
    }

    /// Attempts to carve `client`'s access network out of this topology
    /// for a private client domain.
    ///
    /// Returns `None` — leave the world monolithic — unless the carve is
    /// provably draw-free:
    ///
    /// - the client→server route exists and its first hop leaves the
    ///   client host with no loss probability, no background utilization
    ///   and no fault windows (uplink transmits consume no RNG);
    /// - the server→client route exists and **no** link on it has fault
    ///   windows (no frame can arrive corrupted, so client-side
    ///   reassembly never reaches the checksum-miss draw).
    ///
    /// The published lookaheads are the boundary links' propagation
    /// delays, floored at [`MIN_LOOKAHEAD`] so a hypothetical zero-delay
    /// link cannot collapse the conservative horizon.
    pub fn carve_access(&self, client: NodeId, server: NodeId) -> Option<AccessCarve> {
        let topo = self.topology();
        if !matches!(topo.node_kind(client), NodeKind::Host) {
            return None;
        }
        let up_id = topo.route(client, server)?;
        let uplink = topo.link(up_id);
        if uplink.from() != client || !uplink.is_draw_free() {
            return None;
        }
        let down_path = topo.path_links(server, client);
        let &dn_id = down_path.last()?;
        let downlink = topo.link(dn_id);
        if downlink.to() != client {
            return None;
        }
        if down_path.iter().any(|&l| !topo.link(l).faults_empty()) {
            return None;
        }
        let access = AccessNet {
            uplink: uplink.fresh_copy(),
            uplink_id: up_id,
            client,
            next_id: 1,
            reasm: Reassembler::new(),
            stats: NetStats::default(),
            frag_scratch: Vec::new(),
            meter: CopyMeter::new(),
            rng: Rng::new(0),
        };
        Some(AccessCarve {
            access,
            lookahead_up: uplink.params().prop_delay.max(MIN_LOOKAHEAD),
            lookahead_down: downlink.params().prop_delay.max(MIN_LOOKAHEAD),
        })
    }

    /// [`carve_access`](Self::carve_access) generalized to a sharded
    /// fleet: the carve is legal only when it is legal toward **every**
    /// server *and* the client's first hop is the same physical uplink
    /// for all of them (the carved [`AccessNet`] owns exactly one
    /// uplink; the presets guarantee one access drop per client). The
    /// published lookaheads are the minima over servers, which keeps the
    /// conservative barrier sound for whichever shard answers first.
    pub fn carve_access_multi(&self, client: NodeId, servers: &[NodeId]) -> Option<AccessCarve> {
        let (&first, rest) = servers.split_first()?;
        let mut carve = self.carve_access(client, first)?;
        let up_id = self.topology().route(client, first)?;
        for &s in rest {
            if self.topology().route(client, s)? != up_id {
                return None; // per-server uplinks cannot share one carve
            }
            let other = self.carve_access(client, s)?;
            carve.lookahead_up = carve.lookahead_up.min(other.lookahead_up);
            carve.lookahead_down = carve.lookahead_down.min(other.lookahead_down);
        }
        Some(carve)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use crate::packet::ProtoHeader;
    use crate::topology::presets::{self, Background};
    use renofs_mbuf::MbufChain;

    fn udp_dgram(net: &mut AccessNet, src: NodeId, dst: NodeId, len: usize) -> Datagram {
        let mut meter = CopyMeter::new();
        let data: Vec<u8> = (0..len).map(|i| (i % 256) as u8).collect();
        Datagram {
            id: net.alloc_dgram_id(),
            src,
            dst,
            proto: ProtoHeader::Udp {
                sport: 1023,
                dport: 2049,
            },
            payload: MbufChain::from_slice(&data, &mut meter),
        }
    }

    #[test]
    fn quiet_lan_is_carvable_with_prop_delay_lookahead() {
        let (topo, clients, s) = presets::same_lan_n(&Background::quiet(), 3);
        let net = Network::new(topo, 1);
        for &c in &clients {
            let carve = net.carve_access(c, s).expect("quiet LAN must carve");
            // Ethernet preset: 50 us propagation each way.
            assert_eq!(carve.lookahead_up, SimDuration::from_micros(50));
            assert_eq!(carve.lookahead_down, SimDuration::from_micros(50));
            assert_eq!(carve.access.client(), c);
        }
    }

    #[test]
    fn multi_server_carve_requires_every_shard_path() {
        let (topo, clients, servers) = presets::same_lan_nm(&Background::quiet(), 2, 3);
        let net = Network::new(topo, 7);
        for &c in &clients {
            let carve = net
                .carve_access_multi(c, &servers)
                .expect("quiet sharded LAN must carve");
            assert_eq!(carve.lookahead_up, SimDuration::from_micros(50));
            assert_eq!(carve.lookahead_down, SimDuration::from_micros(50));
        }
        // A fault window on one shard's drop poisons the whole carve.
        let (mut topo, clients, servers) = presets::same_lan_nm(&Background::quiet(), 2, 3);
        let plan = FaultPlan::new().corrupt(SimTime::from_secs(1), 0.5, SimDuration::from_secs(1));
        topo.apply_faults(&plan, clients[0], servers[2]);
        let net = Network::new(topo, 8);
        assert!(net.carve_access_multi(clients[0], &servers).is_none());
    }

    #[test]
    fn background_or_faulted_links_refuse_the_carve() {
        let (topo, clients, s) = presets::same_lan_n(&Background::off_peak(), 2);
        let net = Network::new(topo, 2);
        assert!(
            net.carve_access(clients[0], s).is_none(),
            "background utilization draws from the RNG"
        );

        let (mut topo, clients, s) = presets::same_lan_n(&Background::quiet(), 2);
        let plan = FaultPlan::new().corrupt(SimTime::from_secs(1), 0.5, SimDuration::from_secs(1));
        topo.apply_faults(&plan, clients[0], s);
        let net = Network::new(topo, 3);
        assert!(
            net.carve_access(clients[0], s).is_none(),
            "fault windows on the path forbid the carve"
        );
        assert!(
            net.carve_access(clients[1], s).is_none(),
            "the shared trunk carries the windows, so no client is separable"
        );
    }

    #[test]
    fn carved_uplink_matches_hub_timing_and_emits_at_lookahead() {
        // The same request offered through the carved uplink and through
        // the monolithic network must produce identical first-hop arrival
        // times, and every emission must respect the lookahead bound.
        let (topo, clients, s) = presets::same_lan_n(&Background::quiet(), 2);
        let mut hub = Network::new(topo, 4);
        let carve = hub.carve_access(clients[0], s).unwrap();
        let mut access = carve.access;

        let now = SimTime::from_millis(5);
        let d_access = udp_dgram(&mut access, clients[0], s, 8192 + 120);
        let mut out_access = NetOutput::default();
        access.send_into(now, d_access, &mut out_access);

        let d_hub = Datagram {
            id: hub.alloc_dgram_id(),
            ..udp_dgram(&mut access, clients[0], s, 8192 + 120)
        };
        let mut out_hub = NetOutput::default();
        hub.send_into(now, d_hub, &mut out_hub);

        assert_eq!(out_access.events.len(), out_hub.events.len());
        assert_eq!(out_access.events.len(), 6, "8 KB + RPC header = 6 frags");
        let bridge = hub
            .topology()
            .link(hub.topology().route(clients[0], s).unwrap())
            .to();
        for ((ta, ea), (th, _)) in out_access.events.iter().zip(&out_hub.events) {
            assert_eq!(ta, th, "carved and hub uplinks serialize identically");
            assert!(*ta >= now + carve.lookahead_up, "emission inside lookahead");
            assert_eq!(hub.event_node(ea), bridge);
        }
        assert_eq!(access.stats().frags_sent, 6);
    }

    #[test]
    fn client_side_reassembly_delivers_replies() {
        // Fragments of a server reply delivered into the access domain
        // reassemble exactly as the hub would.
        let (topo, clients, s) = presets::same_lan_n(&Background::quiet(), 2);
        let hub = Network::new(topo, 5);
        let carve = hub.carve_access(clients[0], s).unwrap();
        let mut access = carve.access;

        // Build reply fragments via the hub's own fragmentation.
        let mut meter = CopyMeter::new();
        let want: Vec<u8> = (0..8192usize).map(|i| (i * 7 % 256) as u8).collect();
        let reply = Datagram {
            id: 99,
            src: s,
            dst: clients[0],
            proto: ProtoHeader::Udp {
                sport: 2049,
                dport: 1023,
            },
            payload: MbufChain::from_slice(&want, &mut meter),
        };
        let mut frags = Vec::new();
        let mut stats = NetStats::default();
        fragment_into(reply, 1500, &mut frags, &mut meter, &mut stats);
        assert!(frags.len() > 1);

        let mut out = NetOutput::default();
        let dn = hub.topology().route(s, clients[0]).unwrap();
        for frag in frags {
            access.handle_into(
                SimTime::from_millis(1),
                NetEvent::FragArrive { link: dn, frag },
                &mut out,
            );
        }
        assert_eq!(out.delivered.len(), 1);
        let got = out.delivered[0].dgram.payload.to_vec_for_test();
        assert_eq!(got, want);
        assert_eq!(access.stats().datagrams_delivered, 1);
        // A reassembly timer was armed for the multi-fragment datagram.
        assert!(out
            .events
            .iter()
            .any(|(_, e)| matches!(e, NetEvent::ReasmExpire { .. })));
    }
}
