//! RPC transport mechanisms (the paper's Section 4).
//!
//! The 4.3BSD Reno NFS is transport-independent, which let the paper
//! benchmark three mechanisms:
//!
//! - **UDP with a fixed RTO** ([`udp_client::UdpRpcClient`] configured
//!   with [`rto::RtoPolicy::Fixed`]): the classic Sun transport — a
//!   mount-time constant timeout, backed off exponentially.
//! - **UDP with dynamic RTO estimation and a congestion window**
//!   ([`rto::RtoPolicy::Dynamic`] + [`cwnd::CongWindow`]): per-class
//!   SRTT/deviation tracking for the four most frequent RPCs, `A+4D`
//!   for the big ones, a TCP-style window on outstanding requests with
//!   **slow start removed** — the paper's contribution, which keeps the
//!   existing NFS/UDP wire protocol.
//! - **TCP** ([`tcp::TcpConn`]): a reliable virtual circuit with Jacobson
//!   congestion avoidance and record-marked RPC framing — the mechanism
//!   the paper shows is *not* too slow for NFS.

pub mod cwnd;
pub mod rto;
pub mod tcp;
pub mod udp_client;

pub use cwnd::CongWindow;
pub use rto::{DynRto, RpcClass, RtoPolicy, SrttEstimator};
pub use tcp::{TcpConfig, TcpConn, TcpOut, TcpSegment};
pub use udp_client::{UdpAction, UdpRpcClient, UdpRpcConfig, UdpStats};
