//! The congestion window on outstanding RPC requests.
//!
//! The paper grafted TCP-style congestion control onto NFS/UDP without
//! changing the wire protocol: a window bounds how many RPC requests may
//! be outstanding at once. Testing showed that **slow start hurt
//! performance and had to be removed**; what remains is exactly what the
//! paper describes — "the congestion window on the number of outstanding
//! RPCs is simply incremented by one for each RTT upon reception of an
//! RPC reply and divided by two upon a retransmit timeout." Slow start is
//! retained behind a flag for the ablation experiment.

/// Congestion window in whole outstanding requests.
///
/// # Examples
///
/// ```
/// use renofs_transport::CongWindow;
///
/// let mut w = CongWindow::paper(16);
/// let before = w.window();
/// w.on_timeout();
/// assert!(w.window() <= before / 2 + 1, "halved on timeout");
/// ```
#[derive(Clone, Debug)]
pub struct CongWindow {
    cwnd: f64,
    cap: f64,
    ssthresh: f64,
    slow_start: bool,
}

impl CongWindow {
    /// The paper's configuration: no slow start, starting mid-range.
    pub fn paper(cap: usize) -> Self {
        CongWindow {
            cwnd: (cap as f64 / 2.0).max(1.0),
            cap: cap as f64,
            ssthresh: cap as f64,
            slow_start: false,
        }
    }

    /// The ablation configuration with slow start enabled (starts at 1).
    pub fn with_slow_start(cap: usize) -> Self {
        CongWindow {
            cwnd: 1.0,
            cap: cap as f64,
            ssthresh: cap as f64,
            slow_start: true,
        }
    }

    /// Current window, in whole requests (at least 1).
    pub fn window(&self) -> usize {
        (self.cwnd.floor() as usize).max(1)
    }

    /// Whether another request may be issued with `outstanding` already
    /// in flight.
    pub fn allows(&self, outstanding: usize) -> bool {
        outstanding < self.window()
    }

    /// An RPC reply arrived: open the window — additively (+1 per
    /// window's worth of replies, i.e. +1 per RTT), or exponentially
    /// while in slow start.
    pub fn on_reply(&mut self) {
        if self.slow_start && self.cwnd < self.ssthresh {
            self.cwnd += 1.0;
        } else {
            self.cwnd += 1.0 / self.cwnd.max(1.0);
        }
        if self.cwnd > self.cap {
            self.cwnd = self.cap;
        }
    }

    /// A retransmit timeout fired: halve the window.
    pub fn on_timeout(&mut self) {
        self.ssthresh = (self.cwnd / 2.0).max(2.0);
        if self.slow_start {
            self.cwnd = 1.0;
        } else {
            self.cwnd = (self.cwnd / 2.0).max(1.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_starts_midrange() {
        let w = CongWindow::paper(16);
        assert_eq!(w.window(), 8);
        assert!(w.allows(7));
        assert!(!w.allows(8));
    }

    #[test]
    fn additive_increase_one_per_rtt() {
        let mut w = CongWindow::paper(16);
        let start = w.window();
        // One window's worth of replies ~ one RTT ~ +1 (the increments
        // shrink slightly as the window grows, hence start + 1 replies).
        for _ in 0..=start {
            w.on_reply();
        }
        assert_eq!(w.window(), start + 1);
    }

    #[test]
    fn multiplicative_decrease() {
        let mut w = CongWindow::paper(16);
        for _ in 0..200 {
            w.on_reply();
        }
        assert_eq!(w.window(), 16, "capped");
        w.on_timeout();
        assert_eq!(w.window(), 8);
        w.on_timeout();
        assert_eq!(w.window(), 4);
    }

    #[test]
    fn window_never_below_one() {
        let mut w = CongWindow::paper(4);
        for _ in 0..10 {
            w.on_timeout();
        }
        assert_eq!(w.window(), 1);
        assert!(w.allows(0));
        assert!(!w.allows(1));
    }

    #[test]
    fn slow_start_grows_exponentially_then_linearly() {
        let mut w = CongWindow::with_slow_start(64);
        assert_eq!(w.window(), 1);
        // Slow start: doubles per RTT (one increment per reply).
        for _ in 0..10 {
            w.on_reply();
        }
        assert_eq!(w.window(), 11, "exponential phase: +1 per reply");
        w.on_timeout();
        assert_eq!(w.window(), 1, "slow start restarts from 1");
        // ssthresh was 11/2 = 5.5; growth past it is additive.
        for _ in 0..200 {
            w.on_reply();
        }
        assert!(w.window() > 5);
    }

    #[test]
    fn paper_variant_recovers_faster_than_slow_start() {
        let mut paper = CongWindow::paper(16);
        let mut ss = CongWindow::with_slow_start(16);
        for _ in 0..200 {
            paper.on_reply();
            ss.on_reply();
        }
        paper.on_timeout();
        ss.on_timeout();
        // After a single post-timeout reply, the paper variant has the
        // larger window — the reason slow start was removed.
        paper.on_reply();
        ss.on_reply();
        assert!(paper.window() > ss.window());
    }
}
