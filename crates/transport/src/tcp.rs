//! A simulated TCP with Jacobson congestion avoidance (`[Jacobson88a]`).
//!
//! The paper's provocative result is that a reliable virtual circuit with
//! dynamic RTO estimation and congestion control performs *well* as an
//! NFS transport, despite `[Chesson87]`-era expectations of excessive CPU
//! overhead. This module implements the sender/receiver state machine
//! the 4.3BSD Reno kernel would have provided: sequence space, cumulative
//! ACKs, slow start, congestion avoidance, fast retransmit, exponential
//! backoff with Karn's rule, and in-order delivery to the socket layer.
//!
//! Segments are exchanged as metadata + mbuf payload; the caller wraps
//! them in [`renofs_netsim::Datagram`]s. One retransmit timer per
//! connection is managed through `(deadline, generation)` pairs so stale
//! timer events can be recognized and ignored.

use renofs_mbuf::{CopyMeter, MbufChain};
use renofs_netsim::TcpFlags;
use renofs_sim::{SimDuration, SimTime};

use crate::rto::SrttEstimator;

/// Wrapping sequence-number comparison: `a < b`.
fn seq_lt(a: u32, b: u32) -> bool {
    (a.wrapping_sub(b) as i32) < 0
}

/// Wrapping sequence-number comparison: `a <= b`.
fn seq_le(a: u32, b: u32) -> bool {
    a == b || seq_lt(a, b)
}

/// Static TCP parameters.
#[derive(Clone, Copy, Debug)]
pub struct TcpConfig {
    /// Maximum segment size (path MTU minus 40 bytes of headers).
    pub mss: usize,
    /// Receive window advertised to the peer, in bytes.
    pub recv_window: u32,
    /// RTO before the first RTT sample.
    pub initial_rto: SimDuration,
    /// RTO floor.
    pub min_rto: SimDuration,
    /// RTO ceiling.
    pub max_rto: SimDuration,
}

impl TcpConfig {
    /// Sensible defaults for a given MSS.
    pub fn for_mss(mss: usize) -> Self {
        TcpConfig {
            mss,
            recv_window: 24 * 1024,
            initial_rto: SimDuration::from_secs(1),
            min_rto: SimDuration::from_millis(300),
            max_rto: SimDuration::from_secs(64),
        }
    }
}

/// A segment to transmit (the caller adds addressing).
#[derive(Debug)]
pub struct TcpSegment {
    /// Sequence number of the first payload byte (or of the SYN).
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Advertised window.
    pub window: u32,
    /// Flags.
    pub flags: TcpFlags,
    /// Payload bytes.
    pub payload: MbufChain,
}

/// Output of one protocol step.
#[derive(Debug, Default)]
pub struct TcpOut {
    /// Segments to transmit, in order.
    pub segments: Vec<TcpSegment>,
    /// Re-arm the retransmit timer: absolute deadline + generation. The
    /// caller schedules it and feeds it back via [`TcpConn::on_timer`].
    pub arm_timer: Option<(SimTime, u64)>,
    /// In-order application data.
    pub received: Vec<MbufChain>,
    /// The connection became established during this step.
    pub established: bool,
}

impl TcpOut {
    fn merge(&mut self, mut other: TcpOut) {
        self.segments.append(&mut other.segments);
        if other.arm_timer.is_some() {
            self.arm_timer = other.arm_timer;
        }
        self.received.append(&mut other.received);
        self.established |= other.established;
    }
}

/// Connection state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Listen,
    SynSent,
    SynRcvd,
    Established,
}

/// Cumulative per-connection statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TcpStats {
    /// Data segments sent (excluding pure ACKs).
    pub data_segments_sent: u64,
    /// Pure ACK segments sent.
    pub acks_sent: u64,
    /// Segments received.
    pub segments_received: u64,
    /// Retransmitted segments (timeout or fast retransmit).
    pub retransmits: u64,
    /// Retransmission timeouts taken.
    pub timeouts: u64,
    /// Fast retransmits triggered by triple duplicate ACKs.
    pub fast_retransmits: u64,
    /// Payload bytes sent (first transmission only).
    pub bytes_sent: u64,
    /// Payload bytes delivered to the application.
    pub bytes_delivered: u64,
}

/// One TCP connection endpoint.
pub struct TcpConn {
    cfg: TcpConfig,
    state: State,
    // Send side.
    snd_una: u32,
    snd_nxt: u32,
    snd_max: u32,
    snd_buf: MbufChain,
    cwnd: f64,
    ssthresh: f64,
    peer_wnd: u32,
    dup_acks: u32,
    est: SrttEstimator,
    timing: Option<(u32, SimTime)>,
    backoff: u32,
    timer_gen: u64,
    timer_armed: bool,
    // Receive side.
    rcv_nxt: u32,
    ooo: Vec<(u32, MbufChain)>,
    meter: CopyMeter,
    stats: TcpStats,
}

impl TcpConn {
    fn new(cfg: TcpConfig, state: State, iss: u32) -> Self {
        TcpConn {
            cfg,
            state,
            snd_una: iss,
            snd_nxt: iss,
            snd_max: iss,
            snd_buf: MbufChain::new(),
            cwnd: cfg.mss as f64,
            ssthresh: 64.0 * 1024.0,
            peer_wnd: cfg.mss as u32,
            dup_acks: 0,
            est: SrttEstimator::new(),
            timing: None,
            backoff: 0,
            timer_gen: 0,
            timer_armed: false,
            rcv_nxt: 0,
            ooo: Vec::new(),
            meter: CopyMeter::new(),
            stats: TcpStats::default(),
        }
    }

    /// Creates an active opener and emits its SYN.
    pub fn client(cfg: TcpConfig, iss: u32, now: SimTime) -> (Self, TcpOut) {
        let mut conn = TcpConn::new(cfg, State::SynSent, iss);
        let mut out = TcpOut::default();
        out.segments.push(TcpSegment {
            seq: conn.snd_nxt,
            ack: 0,
            window: cfg.recv_window,
            flags: TcpFlags {
                syn: true,
                ack: false,
                fin: false,
            },
            payload: MbufChain::new(),
        });
        conn.snd_nxt = conn.snd_nxt.wrapping_add(1);
        conn.snd_max = conn.snd_nxt;
        out.arm_timer = Some(conn.arm_timer(now));
        (conn, out)
    }

    /// Creates a passive listener.
    pub fn server(cfg: TcpConfig, iss: u32) -> Self {
        TcpConn::new(cfg, State::Listen, iss)
    }

    /// Whether the connection is established.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// Statistics so far.
    pub fn stats(&self) -> TcpStats {
        self.stats
    }

    /// Bytes copied inside the connection since last drained (small-mbuf
    /// copies when slicing the send buffer); the host charges these.
    pub fn take_copy_bytes(&mut self) -> u64 {
        self.meter.take().0
    }

    /// Unsent + unacknowledged bytes buffered.
    pub fn backlog(&self) -> usize {
        self.snd_buf.len()
    }

    /// Current effective RTO with backoff.
    fn rto(&self) -> SimDuration {
        let base = self
            .est
            .rto(4.0)
            .unwrap_or(self.cfg.initial_rto)
            .max(self.cfg.min_rto);
        let backed = base * (1u64 << self.backoff.min(6));
        backed.min(self.cfg.max_rto)
    }

    fn arm_timer(&mut self, now: SimTime) -> (SimTime, u64) {
        self.timer_gen += 1;
        self.timer_armed = true;
        (now + self.rto(), self.timer_gen)
    }

    fn ack_flags() -> TcpFlags {
        TcpFlags {
            syn: false,
            ack: true,
            fin: false,
        }
    }

    /// Queues application data and transmits whatever the windows allow.
    pub fn send(&mut self, data: MbufChain, now: SimTime) -> TcpOut {
        self.snd_buf.append_chain(data);
        let mut out = TcpOut::default();
        if self.state == State::Established {
            self.try_send(now, &mut out);
        }
        out
    }

    /// Transmits new data within `min(cwnd, peer_wnd)`.
    fn try_send(&mut self, now: SimTime, out: &mut TcpOut) {
        loop {
            let in_flight = self.snd_nxt.wrapping_sub(self.snd_una) as usize;
            let eff_wnd = (self.cwnd as usize).min(self.peer_wnd as usize);
            if eff_wnd <= in_flight {
                break;
            }
            let sendable = self.snd_buf.len().saturating_sub(in_flight);
            if sendable == 0 {
                break;
            }
            let n = sendable.min(self.cfg.mss).min(eff_wnd - in_flight);
            if n == 0 {
                break;
            }
            let payload = self.snd_buf.share_range(in_flight, n, &mut self.meter);
            out.segments.push(TcpSegment {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                window: self.cfg.recv_window,
                flags: Self::ack_flags(),
                payload,
            });
            if self.timing.is_none() {
                self.timing = Some((self.snd_nxt, now));
            }
            self.snd_nxt = self.snd_nxt.wrapping_add(n as u32);
            if seq_lt(self.snd_max, self.snd_nxt) {
                self.snd_max = self.snd_nxt;
            }
            self.stats.data_segments_sent += 1;
            self.stats.bytes_sent += n as u64;
            if !self.timer_armed {
                out.arm_timer = Some(self.arm_timer(now));
            }
        }
    }

    /// Processes an incoming segment.
    pub fn on_segment(
        &mut self,
        seq: u32,
        ack: u32,
        window: u32,
        flags: TcpFlags,
        payload: MbufChain,
        now: SimTime,
    ) -> TcpOut {
        self.stats.segments_received += 1;
        let mut out = TcpOut::default();
        match self.state {
            State::Listen => {
                if flags.syn {
                    self.rcv_nxt = seq.wrapping_add(1);
                    out.segments.push(TcpSegment {
                        seq: self.snd_nxt,
                        ack: self.rcv_nxt,
                        window: self.cfg.recv_window,
                        flags: TcpFlags {
                            syn: true,
                            ack: true,
                            fin: false,
                        },
                        payload: MbufChain::new(),
                    });
                    self.snd_nxt = self.snd_nxt.wrapping_add(1);
                    self.snd_max = self.snd_nxt;
                    self.state = State::SynRcvd;
                    out.arm_timer = Some(self.arm_timer(now));
                }
            }
            State::SynSent => {
                if flags.syn && flags.ack && ack == self.snd_nxt {
                    self.snd_una = ack;
                    self.rcv_nxt = seq.wrapping_add(1);
                    self.peer_wnd = window;
                    self.state = State::Established;
                    self.timer_armed = false;
                    self.backoff = 0;
                    out.established = true;
                    // ACK the SYN-ACK; piggyback nothing.
                    out.segments.push(TcpSegment {
                        seq: self.snd_nxt,
                        ack: self.rcv_nxt,
                        window: self.cfg.recv_window,
                        flags: Self::ack_flags(),
                        payload: MbufChain::new(),
                    });
                    self.stats.acks_sent += 1;
                    self.try_send(now, &mut out);
                }
            }
            State::SynRcvd => {
                if flags.ack && ack == self.snd_nxt {
                    self.snd_una = ack;
                    self.peer_wnd = window;
                    self.state = State::Established;
                    self.timer_armed = false;
                    self.backoff = 0;
                    out.established = true;
                    // The ACK may carry data already.
                    if !payload.is_empty() {
                        let sub = self.on_segment(seq, ack, window, flags, payload, now);
                        out.merge(sub);
                    }
                    self.try_send(now, &mut out);
                }
            }
            State::Established => {
                self.established_segment(seq, ack, window, flags, payload, now, &mut out);
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn established_segment(
        &mut self,
        seq: u32,
        ack: u32,
        window: u32,
        flags: TcpFlags,
        payload: MbufChain,
        now: SimTime,
        out: &mut TcpOut,
    ) {
        if flags.syn {
            // A retransmitted SYN-ACK: our final handshake ACK was lost.
            // Re-ACK so the peer can leave SYN-RCVD.
            out.segments.push(TcpSegment {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                window: self.cfg.recv_window,
                flags: Self::ack_flags(),
                payload: MbufChain::new(),
            });
            self.stats.acks_sent += 1;
            let _ = now;
            return;
        }
        if flags.ack {
            self.peer_wnd = window;
            if seq_lt(self.snd_una, ack) && seq_le(ack, self.snd_max) {
                // New data acknowledged.
                let acked = ack.wrapping_sub(self.snd_una) as usize;
                self.snd_buf.trim_front(acked);
                self.snd_una = ack;
                if seq_lt(self.snd_nxt, self.snd_una) {
                    self.snd_nxt = self.snd_una;
                }
                self.dup_acks = 0;
                self.backoff = 0;
                // RTT sample (Karn: only if the timed byte was not
                // retransmitted; retransmission clears `timing`).
                if let Some((tseq, t0)) = self.timing {
                    if seq_lt(tseq, ack) {
                        self.est.on_sample(now.since(t0));
                        self.timing = None;
                    }
                }
                // Congestion window growth.
                let mss = self.cfg.mss as f64;
                if self.cwnd < self.ssthresh {
                    self.cwnd += mss;
                } else {
                    self.cwnd += mss * mss / self.cwnd;
                }
                // Timer: re-arm if data remains outstanding, else stop.
                if self.snd_una == self.snd_max {
                    self.timer_armed = false;
                } else {
                    out.arm_timer = Some(self.arm_timer(now));
                }
                self.try_send(now, out);
            } else if ack == self.snd_una && payload.is_empty() && self.snd_una != self.snd_max {
                // Duplicate ACK while data is outstanding.
                self.dup_acks += 1;
                if self.dup_acks == 3 {
                    self.fast_retransmit(now, out);
                }
            }
        }
        if !payload.is_empty() {
            self.ingest_payload(seq, payload, out);
            // ACK everything we have (immediate ACK policy).
            out.segments.push(TcpSegment {
                seq: self.snd_nxt,
                ack: self.rcv_nxt,
                window: self.cfg.recv_window,
                flags: Self::ack_flags(),
                payload: MbufChain::new(),
            });
            self.stats.acks_sent += 1;
        }
    }

    fn ingest_payload(&mut self, seq: u32, mut payload: MbufChain, out: &mut TcpOut) {
        // Trim any already-received prefix.
        if seq_lt(seq, self.rcv_nxt) {
            let overlap = self.rcv_nxt.wrapping_sub(seq) as usize;
            if overlap >= payload.len() {
                return; // Entirely old.
            }
            payload.trim_front(overlap);
        } else if seq != self.rcv_nxt {
            // Out of order: stash unless duplicate.
            if !self.ooo.iter().any(|&(s, _)| s == seq) {
                self.ooo.push((seq, payload));
                self.ooo.sort_by(|a, b| {
                    if seq_lt(a.0, b.0) {
                        std::cmp::Ordering::Less
                    } else if a.0 == b.0 {
                        std::cmp::Ordering::Equal
                    } else {
                        std::cmp::Ordering::Greater
                    }
                });
            }
            return;
        }
        self.stats.bytes_delivered += payload.len() as u64;
        self.rcv_nxt = self.rcv_nxt.wrapping_add(payload.len() as u32);
        out.received.push(payload);
        // Drain contiguous out-of-order segments.
        while let Some(idx) = self.ooo.iter().position(|&(s, _)| seq_le(s, self.rcv_nxt)) {
            let (s, mut data) = self.ooo.remove(idx);
            if seq_lt(s, self.rcv_nxt) {
                let overlap = self.rcv_nxt.wrapping_sub(s) as usize;
                if overlap >= data.len() {
                    continue;
                }
                data.trim_front(overlap);
            }
            self.stats.bytes_delivered += data.len() as u64;
            self.rcv_nxt = self.rcv_nxt.wrapping_add(data.len() as u32);
            out.received.push(data);
        }
    }

    fn fast_retransmit(&mut self, now: SimTime, out: &mut TcpOut) {
        self.stats.fast_retransmits += 1;
        let flight = self.snd_max.wrapping_sub(self.snd_una) as f64;
        self.ssthresh = (flight / 2.0).max(2.0 * self.cfg.mss as f64);
        self.cwnd = self.ssthresh;
        self.timing = None;
        self.retransmit_first(now, out);
    }

    /// Retransmits the segment at `snd_una`.
    fn retransmit_first(&mut self, now: SimTime, out: &mut TcpOut) {
        let outstanding = self.snd_max.wrapping_sub(self.snd_una) as usize;
        if outstanding == 0 {
            return;
        }
        let n = outstanding.min(self.cfg.mss).min(self.snd_buf.len());
        if n == 0 {
            return;
        }
        let payload = self.snd_buf.share_range(0, n, &mut self.meter);
        out.segments.push(TcpSegment {
            seq: self.snd_una,
            ack: self.rcv_nxt,
            window: self.cfg.recv_window,
            flags: Self::ack_flags(),
            payload,
        });
        self.stats.retransmits += 1;
        out.arm_timer = Some(self.arm_timer(now));
    }

    /// Handles a retransmit-timer event. Stale generations are ignored.
    pub fn on_timer(&mut self, gen: u64, now: SimTime) -> TcpOut {
        let mut out = TcpOut::default();
        if !self.timer_armed || gen != self.timer_gen {
            return out;
        }
        match self.state {
            State::SynSent | State::SynRcvd => {
                // Re-send the SYN (or SYN-ACK).
                self.stats.timeouts += 1;
                self.backoff += 1;
                out.segments.push(TcpSegment {
                    seq: self.snd_una,
                    ack: if self.state == State::SynRcvd {
                        self.rcv_nxt
                    } else {
                        0
                    },
                    window: self.cfg.recv_window,
                    flags: TcpFlags {
                        syn: true,
                        ack: self.state == State::SynRcvd,
                        fin: false,
                    },
                    payload: MbufChain::new(),
                });
                out.arm_timer = Some(self.arm_timer(now));
            }
            State::Established => {
                if self.snd_una == self.snd_max {
                    self.timer_armed = false;
                    return out;
                }
                self.stats.timeouts += 1;
                self.backoff += 1;
                let flight = self.snd_max.wrapping_sub(self.snd_una) as f64;
                self.ssthresh = (flight / 2.0).max(2.0 * self.cfg.mss as f64);
                self.cwnd = self.cfg.mss as f64;
                // Go-back-N from snd_una; Karn's rule voids the sample.
                self.snd_nxt = self.snd_una;
                self.timing = None;
                self.dup_acks = 0;
                self.retransmit_first(now, &mut out);
            }
            State::Listen => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TcpConfig {
        TcpConfig::for_mss(1460)
    }

    /// In-memory harness: exchanges segments between two endpoints with a
    /// fixed per-hop delay and an optional per-segment drop function.
    struct Wire {
        now: SimTime,
        a: TcpConn,
        b: TcpConn,
        a_rx: Vec<MbufChain>,
        b_rx: Vec<MbufChain>,
        timers: Vec<(bool, SimTime, u64)>,
        drop: Box<dyn FnMut(usize) -> bool>,
        count: usize,
    }

    impl Wire {
        fn new(drop: Box<dyn FnMut(usize) -> bool>) -> Self {
            let now = SimTime::from_millis(1);
            let (a, out) = TcpConn::client(cfg(), 1000, now);
            let b = TcpConn::server(cfg(), 9000);
            let mut w = Wire {
                now,
                a,
                b,
                a_rx: Vec::new(),
                b_rx: Vec::new(),
                timers: Vec::new(),
                drop,
                count: 0,
            };
            w.pump(out, true);
            w
        }

        /// Absorbs a protocol-step output produced by side `from_a`:
        /// received data goes to that side's rx buffer immediately (it is
        /// in order at creation time), timers are remembered, and
        /// segments are queued FIFO for the peer.
        fn absorb(
            &mut self,
            mut out: TcpOut,
            from_a: bool,
            q: &mut std::collections::VecDeque<(TcpSegment, bool)>,
        ) {
            let rx = if from_a {
                &mut self.a_rx
            } else {
                &mut self.b_rx
            };
            rx.append(&mut out.received);
            if let Some((deadline, gen)) = out.arm_timer {
                self.timers.push((from_a, deadline, gen));
            }
            for seg in out.segments {
                q.push_back((seg, from_a));
            }
        }

        /// Feeds `out` from side `from_a` into the peer and runs until
        /// both sides are quiescent (no segments, nothing outstanding).
        fn pump(&mut self, out: TcpOut, from_a: bool) {
            let mut q = std::collections::VecDeque::new();
            self.absorb(out, from_a, &mut q);
            for _ in 0..1_000_000 {
                if let Some((seg, seg_from_a)) = q.pop_front() {
                    self.count += 1;
                    let n = self.count;
                    if (self.drop)(n) {
                        continue;
                    }
                    self.now += SimDuration::from_millis(1);
                    let peer_is_a = !seg_from_a;
                    let sub = {
                        let peer = if peer_is_a { &mut self.a } else { &mut self.b };
                        peer.on_segment(
                            seg.seq,
                            seg.ack,
                            seg.window,
                            seg.flags,
                            seg.payload,
                            self.now,
                        )
                    };
                    self.absorb(sub, peer_is_a, &mut q);
                    continue;
                }
                // Queue drained: anything still outstanding?
                let a_stuck = self.a.snd_una != self.a.snd_max
                    || (self.a.state != State::Established && self.a.state != State::Listen);
                let b_stuck = self.b.snd_una != self.b.snd_max
                    || (self.b.state != State::Established && self.b.state != State::Listen);
                if !a_stuck && !b_stuck {
                    break;
                }
                // Fire the earliest pending timer.
                self.timers.sort_by_key(|&(_, d, _)| d);
                if self.timers.is_empty() {
                    break;
                }
                let (ta, deadline, gen) = self.timers.remove(0);
                self.now = self.now.max(deadline);
                let conn = if ta { &mut self.a } else { &mut self.b };
                let sub = conn.on_timer(gen, self.now);
                self.absorb(sub, ta, &mut q);
            }
        }

        fn send_a(&mut self, data: &[u8]) {
            let mut m = CopyMeter::new();
            self.now += SimDuration::from_millis(1);
            let out = self.a.send(MbufChain::from_slice(data, &mut m), self.now);
            self.pump(out, true);
        }

        fn b_received(&self) -> Vec<u8> {
            let mut v = Vec::new();
            for c in &self.b_rx {
                v.extend_from_slice(&c.to_vec_for_test());
            }
            v
        }
    }

    #[test]
    fn handshake_establishes_both_sides() {
        let w = Wire::new(Box::new(|_| false));
        assert!(w.a.is_established());
        assert!(w.b.is_established());
    }

    #[test]
    fn in_order_bulk_transfer() {
        let mut w = Wire::new(Box::new(|_| false));
        let data: Vec<u8> = (0..50_000u32).map(|i| (i % 251) as u8).collect();
        w.send_a(&data);
        assert_eq!(w.b_received(), data);
        assert_eq!(w.a.stats().retransmits, 0);
    }

    #[test]
    fn data_survives_segment_loss() {
        // Drop every 7th segment.
        let mut w = Wire::new(Box::new(|n| n % 7 == 0));
        let data: Vec<u8> = (0..40_000u32).map(|i| (i * 13 % 256) as u8).collect();
        w.send_a(&data);
        assert_eq!(
            w.b_received(),
            data,
            "stream delivered exactly despite loss"
        );
        let st = w.a.stats();
        assert!(st.retransmits > 0, "loss must have caused retransmits");
    }

    #[test]
    fn slow_start_opens_window() {
        let mut w = Wire::new(Box::new(|_| false));
        assert!((w.a.cwnd - 1460.0).abs() < 1.0, "starts at one MSS");
        w.send_a(&vec![0u8; 30_000]);
        assert!(w.a.cwnd > 4.0 * 1460.0, "cwnd grew: {}", w.a.cwnd);
    }

    #[test]
    fn timeout_collapses_cwnd() {
        let mut w = Wire::new(Box::new(|_| false));
        w.send_a(&vec![1u8; 20_000]);
        let grown = w.a.cwnd;
        // Now drop everything for a while to force a timeout.
        w.drop = Box::new(|_| true);
        let mut m = CopyMeter::new();
        let now2 = w.now + SimDuration::from_millis(1);
        let out = w.a.send(MbufChain::from_slice(&[7u8; 1000], &mut m), now2);
        // Emulate the timer firing directly.
        let (deadline, gen) = out.arm_timer.expect("timer armed for new data");
        let to_out = w.a.on_timer(gen, deadline);
        assert_eq!(to_out.segments.len(), 1, "retransmits first segment");
        assert!(w.a.cwnd < grown, "cwnd collapsed after timeout");
        assert!((w.a.cwnd - 1460.0).abs() < 1.0);
        assert_eq!(w.a.stats().timeouts, 1);
    }

    #[test]
    fn stale_timer_generation_ignored() {
        let mut w = Wire::new(Box::new(|_| false));
        w.send_a(b"hello");
        // All data acked; any old generation must be a no-op.
        let out = w.a.on_timer(0, w.now + SimDuration::from_secs(10));
        assert!(out.segments.is_empty());
        assert_eq!(w.a.stats().timeouts, 0);
    }

    #[test]
    fn rtt_estimator_gets_samples() {
        let mut w = Wire::new(Box::new(|_| false));
        w.send_a(&vec![0u8; 10_000]);
        assert!(w.a.est.has_sample(), "bulk transfer must time an RTT");
    }

    #[test]
    fn bidirectional_transfer() {
        let mut w = Wire::new(Box::new(|_| false));
        let mut m = CopyMeter::new();
        w.send_a(b"ping");
        let now = w.now + SimDuration::from_millis(1);
        let out = w.b.send(MbufChain::from_slice(b"pong!", &mut m), now);
        w.pump(out, false);
        assert_eq!(w.b_received(), b"ping");
        let a_got: Vec<u8> = w.a_rx.iter().flat_map(|c| c.to_vec_for_test()).collect();
        assert_eq!(a_got, b"pong!");
    }

    #[test]
    fn out_of_order_segments_reassembled() {
        // Deliver segments to a receiver manually, out of order.
        let mut b = TcpConn::server(cfg(), 500);
        let now = SimTime::from_millis(5);
        // Handshake by hand.
        let syn = b.on_segment(
            100,
            0,
            24 * 1024,
            TcpFlags {
                syn: true,
                ack: false,
                fin: false,
            },
            MbufChain::new(),
            now,
        );
        assert_eq!(syn.segments.len(), 1);
        let _ = b.on_segment(
            101,
            501,
            24 * 1024,
            TcpConn::ack_flags(),
            MbufChain::new(),
            now,
        );
        assert!(b.is_established());
        let mut m = CopyMeter::new();
        // Segment 2 arrives before segment 1.
        let out2 = b.on_segment(
            101 + 4,
            501,
            24 * 1024,
            TcpConn::ack_flags(),
            MbufChain::from_slice(b"5678", &mut m),
            now,
        );
        assert!(out2.received.is_empty(), "held out of order");
        let out1 = b.on_segment(
            101,
            501,
            24 * 1024,
            TcpConn::ack_flags(),
            MbufChain::from_slice(b"1234", &mut m),
            now,
        );
        let got: Vec<u8> = out1
            .received
            .iter()
            .flat_map(|c| c.to_vec_for_test())
            .collect();
        assert_eq!(got, b"12345678");
    }

    #[test]
    fn duplicate_data_not_redelivered() {
        let mut w = Wire::new(Box::new(|_| false));
        w.send_a(b"abcdef");
        let before = w.b_received();
        // Replay the same bytes (e.g. a spurious retransmission).
        let mut m = CopyMeter::new();
        let now = w.now + SimDuration::from_millis(1);
        let out = w.b.on_segment(
            1001,        // original first data seq (iss=1000, +1 for SYN)
            w.b.rcv_nxt, // arbitrary valid-ish ack
            24 * 1024,
            TcpConn::ack_flags(),
            MbufChain::from_slice(b"abcdef", &mut m),
            now,
        );
        assert!(out.received.is_empty(), "old bytes discarded");
        assert_eq!(w.b_received(), before);
    }
}
