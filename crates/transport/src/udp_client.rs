//! The client side of NFS RPC over UDP.
//!
//! For datagram sockets, the Reno client provides round-trip timeout
//! estimation and retransmission. This module implements both transports
//! the paper compares:
//!
//! - **fixed RTO**: the mount-time constant, exponentially backed off —
//!   the classic transport whose erratic behaviour shows in Graphs 3–5;
//! - **dynamic RTO + congestion window**: per-class `A+4D`/`A+2D`
//!   estimation and a window on outstanding requests (slow start
//!   removed), which improved the config-2 read rate by ~30 % and more
//!   than tripled the 56 Kbps read rate.
//!
//! Retransmissions reuse the original XID (so a server duplicate-request
//! cache can suppress re-execution) and Karn's rule excludes
//! retransmitted calls from RTT sampling.

use std::collections::HashMap;

use renofs_mbuf::MbufChain;
use renofs_sim::{SimDuration, SimTime};

use crate::cwnd::CongWindow;
use crate::rto::{DynRto, RpcClass, RtoPolicy};

/// Client transport configuration.
#[derive(Clone, Debug)]
pub struct UdpRpcConfig {
    /// Timeout policy.
    pub policy: RtoPolicy,
    /// Mount-time base RTO (the `timeo` option).
    pub base_rto: SimDuration,
    /// Whether a congestion window bounds outstanding requests.
    pub use_cwnd: bool,
    /// Window cap in requests.
    pub cwnd_cap: usize,
    /// Enable slow start (the paper removed it; kept for the ablation).
    pub slow_start: bool,
    /// Soft mount: give up after `retrans` transmissions and report the
    /// call as timed out. Hard mounts (the default) retry forever.
    pub soft: bool,
    /// Transmission budget for a soft mount, and the threshold after
    /// which a hard mount reports `server not responding`.
    pub retrans: u32,
}

impl UdpRpcConfig {
    /// Classic NFS/UDP: fixed 1-second RTO, no window.
    pub fn fixed(base_rto: SimDuration) -> Self {
        UdpRpcConfig {
            policy: RtoPolicy::Fixed,
            base_rto,
            use_cwnd: false,
            cwnd_cap: 64,
            slow_start: false,
            soft: false,
            retrans: 4,
        }
    }

    /// The paper's tuned NFS/UDP: dynamic per-class RTO, congestion
    /// window, no slow start.
    pub fn dynamic_paper(base_rto: SimDuration) -> Self {
        UdpRpcConfig {
            policy: RtoPolicy::dynamic_paper(),
            base_rto,
            use_cwnd: true,
            cwnd_cap: 16,
            slow_start: false,
            soft: false,
            retrans: 4,
        }
    }

    /// Converts the mount to soft semantics with the given transmission
    /// budget (the `soft,retrans=` mount options).
    pub fn soft(mut self, retrans: u32) -> Self {
        self.soft = true;
        self.retrans = retrans.max(1);
        self
    }
}

/// Actions the caller must perform after a transport step.
// `Send` is fat because `MbufChain` keeps its segment list inline; the
// action vector is recycled by the caller, so the size costs nothing
// per call, while boxing the payload would allocate on every send.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum UdpAction {
    /// Transmit this RPC message as a UDP datagram.
    Send {
        /// XID, for tracing.
        xid: u32,
        /// The message (record-unframed; UDP carries whole RPCs).
        payload: MbufChain,
    },
    /// Arm a retransmit timer and feed it back via
    /// [`UdpRpcClient::on_timer`] when it fires.
    ArmTimer {
        /// The request's XID.
        xid: u32,
        /// Timer generation (stale generations are ignored).
        gen: u64,
        /// Absolute deadline.
        deadline: SimTime,
    },
    /// A soft mount exhausted its `retrans` budget: the call is dead and
    /// its waiter must be failed with a timeout error.
    GiveUp {
        /// The abandoned request's XID.
        xid: u32,
    },
    /// A hard mount crossed its `retrans` threshold: print the console
    /// line `nfs: server not responding` (the transport keeps retrying).
    NotResponding {
        /// The request that crossed the threshold.
        xid: u32,
    },
    /// A reply arrived after `NotResponding` was reported: print
    /// `nfs: server ok`.
    ServerOk {
        /// The reply that ended the outage.
        xid: u32,
    },
}

/// A finished call.
#[derive(Debug)]
pub struct CompletedCall {
    /// The XID.
    pub xid: u32,
    /// RPC class.
    pub class: RpcClass,
    /// Reply payload (RPC header + results).
    pub reply: MbufChain,
    /// User-visible latency: first transmission to reply.
    pub rtt: SimDuration,
    /// Whether any retransmission happened.
    pub retransmitted: bool,
}

/// Cumulative transport statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct UdpStats {
    /// Calls issued.
    pub calls: u64,
    /// Calls completed.
    pub completed: u64,
    /// Datagrams retransmitted.
    pub retransmits: u64,
    /// Replies that matched no pending call (duplicates/late).
    pub stray_replies: u64,
    /// Calls that were ever deferred by the congestion window.
    pub window_deferrals: u64,
    /// Soft-mount calls abandoned after exhausting `retrans`.
    pub soft_timeouts: u64,
    /// Largest backoff interval ever armed (must respect the 60 s cap).
    pub max_backoff: SimDuration,
}

struct Pending {
    class: RpcClass,
    msg: MbufChain,
    first_sent: SimTime,
    sends: u32,
    timer_gen: u64,
    retransmitted: bool,
    /// RTO snapshotted at transmission time, used when the policy does
    /// not recalculate on every tick.
    rto_at_send: SimDuration,
}

/// The per-mount UDP RPC client transport.
pub struct UdpRpcClient {
    cfg: UdpRpcConfig,
    rto: DynRto,
    cwnd: Option<CongWindow>,
    next_xid: u32,
    pending: HashMap<u32, Pending>,
    /// Calls admitted but deferred by the congestion window.
    queue: Vec<(u32, RpcClass, MbufChain)>,
    stats: UdpStats,
    /// Whether `NotResponding` has been reported and not yet cleared by
    /// a reply (one console line per outage, as in the BSD client).
    down_reported: bool,
}

impl UdpRpcClient {
    /// Creates a transport; `xid_seed` keeps streams from colliding when
    /// several mounts share a simulation.
    pub fn new(cfg: UdpRpcConfig, xid_seed: u32) -> Self {
        let rto = DynRto::new(cfg.policy, cfg.base_rto);
        let cwnd = if cfg.use_cwnd {
            Some(if cfg.slow_start {
                CongWindow::with_slow_start(cfg.cwnd_cap)
            } else {
                CongWindow::paper(cfg.cwnd_cap)
            })
        } else {
            None
        };
        UdpRpcClient {
            cfg,
            rto,
            cwnd,
            next_xid: xid_seed,
            pending: HashMap::new(),
            queue: Vec::new(),
            stats: UdpStats::default(),
            down_reported: false,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &UdpRpcConfig {
        &self.cfg
    }

    /// Allocates the next XID (callers build the RPC header with it).
    pub fn alloc_xid(&mut self) -> u32 {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        xid
    }

    /// Requests currently in flight.
    pub fn outstanding(&self) -> usize {
        self.pending.len()
    }

    /// Requests waiting on the congestion window.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> UdpStats {
        self.stats
    }

    /// Current RTO that would be applied to a class (for Graph 7 traces).
    pub fn current_rto(&self, class: RpcClass) -> SimDuration {
        self.rto.rto(class)
    }

    /// Current congestion window, if one is configured.
    pub fn window(&self) -> Option<usize> {
        self.cwnd.as_ref().map(|w| w.window())
    }

    /// Issues a call whose message (RPC header + args, XID already
    /// embedded) is `msg`. Appends the actions to perform to `actions`,
    /// which the caller owns and recycles — an RPC happens every few
    /// simulated milliseconds, so the transport never allocates a fresh
    /// action vector.
    pub fn call(
        &mut self,
        now: SimTime,
        xid: u32,
        class: RpcClass,
        msg: MbufChain,
        actions: &mut Vec<UdpAction>,
    ) {
        self.stats.calls += 1;
        if let Some(w) = &self.cwnd {
            if !w.allows(self.pending.len()) {
                self.stats.window_deferrals += 1;
                self.queue.push((xid, class, msg));
                return;
            }
        }
        self.transmit(now, xid, class, msg, actions);
    }

    fn transmit(
        &mut self,
        now: SimTime,
        xid: u32,
        class: RpcClass,
        msg: MbufChain,
        actions: &mut Vec<UdpAction>,
    ) {
        let rto = self.rto.rto(class);
        let pending = Pending {
            class,
            msg: msg.clone(),
            first_sent: now,
            sends: 1,
            timer_gen: 1,
            retransmitted: false,
            rto_at_send: rto,
        };
        actions.push(UdpAction::Send { xid, payload: msg });
        actions.push(UdpAction::ArmTimer {
            xid,
            gen: 1,
            deadline: now + rto,
        });
        self.pending.insert(xid, pending);
    }

    /// Processes an incoming reply whose XID has been peeked by the
    /// socket layer. Returns the completion (if it matches); any queued
    /// calls the window now admits are appended to `actions`.
    pub fn on_reply(
        &mut self,
        now: SimTime,
        xid: u32,
        reply: MbufChain,
        actions: &mut Vec<UdpAction>,
    ) -> Option<CompletedCall> {
        let Some(p) = self.pending.remove(&xid) else {
            self.stats.stray_replies += 1;
            return None;
        };
        self.stats.completed += 1;
        let rtt = now.since(p.first_sent);
        // Karn's rule: skip samples for retransmitted calls.
        if !p.retransmitted {
            self.rto.on_sample(p.class, rtt);
        }
        if let Some(w) = &mut self.cwnd {
            w.on_reply();
        }
        if self.down_reported {
            self.down_reported = false;
            actions.push(UdpAction::ServerOk { xid });
        }
        self.drain_queue(now, actions);
        Some(CompletedCall {
            xid,
            class: p.class,
            reply,
            rtt,
            retransmitted: p.retransmitted,
        })
    }

    fn drain_queue(&mut self, now: SimTime, actions: &mut Vec<UdpAction>) {
        while !self.queue.is_empty() {
            if let Some(w) = &self.cwnd {
                if !w.allows(self.pending.len()) {
                    break;
                }
            }
            let (xid, class, msg) = self.queue.remove(0);
            self.transmit(now, xid, class, msg, actions);
        }
    }

    /// Handles a retransmit timer, appending the resulting actions.
    /// Stale (xid, gen) pairs are no-ops.
    pub fn on_timer(&mut self, now: SimTime, xid: u32, gen: u64, actions: &mut Vec<UdpAction>) {
        let Some(p) = self.pending.get_mut(&xid) else {
            return;
        };
        if p.timer_gen != gen {
            return;
        }
        // A soft mount stops here once `retrans` transmissions have all
        // timed out; the syscall comes back with `ETIMEDOUT`.
        if self.cfg.soft && p.sends >= self.cfg.retrans {
            let class = p.class;
            self.pending.remove(&xid);
            self.stats.soft_timeouts += 1;
            if let Some(w) = &mut self.cwnd {
                w.on_timeout();
            }
            self.rto.on_timeout(class);
            actions.push(UdpAction::GiveUp { xid });
            self.drain_queue(now, actions);
            return;
        }
        // Timeout: retransmit with exponential backoff; the class-level
        // backoff persists for subsequent requests until a clean sample.
        self.stats.retransmits += 1;
        let class = p.class;
        p.retransmitted = true;
        p.sends += 1;
        p.timer_gen += 1;
        let base = if self.rto.recalc_each_tick() {
            self.rto.rto(p.class)
        } else {
            p.rto_at_send
        };
        let backoff = base * (1u64 << (p.sends - 1).min(6));
        let backoff = backoff.min(SimDuration::from_secs(60));
        if backoff > self.stats.max_backoff {
            self.stats.max_backoff = backoff;
        }
        actions.push(UdpAction::Send {
            xid,
            payload: p.msg.clone(),
        });
        actions.push(UdpAction::ArmTimer {
            xid,
            gen: p.timer_gen,
            deadline: now + backoff,
        });
        // A hard mount that has retransmitted past the `retrans`
        // threshold reports the outage to the console, once, and keeps
        // trying forever.
        if !self.cfg.soft && !self.down_reported && p.sends > self.cfg.retrans {
            self.down_reported = true;
            actions.push(UdpAction::NotResponding { xid });
        }
        if let Some(w) = &mut self.cwnd {
            w.on_timeout();
        }
        self.rto.on_timeout(class);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use renofs_mbuf::CopyMeter;

    fn msg(tag: u8) -> MbufChain {
        let mut m = CopyMeter::new();
        MbufChain::from_slice(&[tag; 64], &mut m)
    }

    fn ms(n: u64) -> SimTime {
        SimTime::from_millis(n)
    }

    fn call(
        c: &mut UdpRpcClient,
        now: SimTime,
        xid: u32,
        class: RpcClass,
        m: MbufChain,
    ) -> Vec<UdpAction> {
        let mut actions = Vec::new();
        c.call(now, xid, class, m, &mut actions);
        actions
    }

    fn reply(
        c: &mut UdpRpcClient,
        now: SimTime,
        xid: u32,
        m: MbufChain,
    ) -> (Option<CompletedCall>, Vec<UdpAction>) {
        let mut actions = Vec::new();
        let done = c.on_reply(now, xid, m, &mut actions);
        (done, actions)
    }

    fn timer(c: &mut UdpRpcClient, now: SimTime, xid: u32, gen: u64) -> Vec<UdpAction> {
        let mut actions = Vec::new();
        c.on_timer(now, xid, gen, &mut actions);
        actions
    }

    fn first_send_xid(actions: &[UdpAction]) -> Option<u32> {
        actions.iter().find_map(|a| match a {
            UdpAction::Send { xid, .. } => Some(*xid),
            _ => None,
        })
    }

    #[test]
    fn call_sends_and_arms_timer() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::fixed(SimDuration::from_secs(1)), 100);
        let xid = c.alloc_xid();
        let actions = call(&mut c, ms(0), xid, RpcClass::Lookup, msg(1));
        assert_eq!(actions.len(), 2);
        assert_eq!(first_send_xid(&actions), Some(100));
        match &actions[1] {
            UdpAction::ArmTimer { deadline, .. } => {
                assert_eq!(*deadline, SimTime::from_secs(1));
            }
            other => panic!("expected timer, got {other:?}"),
        }
        assert_eq!(c.outstanding(), 1);
    }

    #[test]
    fn reply_completes_and_samples_rtt() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::dynamic_paper(SimDuration::from_secs(1)), 0);
        for i in 0..30u64 {
            let xid = c.alloc_xid();
            call(&mut c, ms(i * 100), xid, RpcClass::Lookup, msg(0));
            let (done, _) = reply(&mut c, ms(i * 100 + 12), xid, msg(9));
            let done = done.unwrap();
            assert_eq!(done.rtt, SimDuration::from_millis(12));
            assert!(!done.retransmitted);
        }
        // RTO should now reflect the 12ms RTT, not the 1s base (but it is
        // clamped at the 200ms floor).
        assert!(c.current_rto(RpcClass::Lookup) <= SimDuration::from_millis(200));
    }

    #[test]
    fn timer_retransmits_with_backoff() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::fixed(SimDuration::from_secs(1)), 0);
        let xid = c.alloc_xid();
        let a1 = call(&mut c, ms(0), xid, RpcClass::Read, msg(0));
        let gen1 = match &a1[1] {
            UdpAction::ArmTimer { gen, .. } => *gen,
            _ => panic!(),
        };
        let a2 = timer(&mut c, SimTime::from_secs(1), xid, gen1);
        assert_eq!(a2.len(), 2, "resend + rearm");
        match &a2[1] {
            UdpAction::ArmTimer { gen, deadline, .. } => {
                assert_eq!(*gen, 2);
                // Second attempt: 2x backoff => deadline at 1s + 2s.
                assert_eq!(*deadline, SimTime::from_secs(3));
            }
            _ => panic!(),
        }
        assert_eq!(c.stats().retransmits, 1);
        // Stale generation is ignored.
        assert!(timer(&mut c, SimTime::from_secs(2), xid, gen1).is_empty());
    }

    #[test]
    fn retransmitted_call_skips_rtt_sample() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::dynamic_paper(SimDuration::from_secs(1)), 0);
        let xid = c.alloc_xid();
        call(&mut c, ms(0), xid, RpcClass::Read, msg(0));
        timer(&mut c, SimTime::from_secs(1), xid, 1);
        let (done, _) = reply(&mut c, SimTime::from_secs(2), xid, msg(1));
        assert!(done.unwrap().retransmitted);
        // No sample taken (Karn): the estimator is still empty, so the
        // RTO is the base value scaled by the persistent timeout backoff.
        assert_eq!(c.current_rto(RpcClass::Read), SimDuration::from_secs(2));
        // A clean call clears the backoff and finally feeds a sample.
        let xid2 = c.alloc_xid();
        call(&mut c, SimTime::from_secs(3), xid2, RpcClass::Read, msg(0));
        let (done, _) = reply(
            &mut c,
            SimTime::from_secs(3) + SimDuration::from_millis(40),
            xid2,
            msg(1),
        );
        assert!(!done.unwrap().retransmitted);
        assert!(c.current_rto(RpcClass::Read) < SimDuration::from_secs(1));
    }

    #[test]
    fn congestion_window_defers_excess_calls() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::dynamic_paper(SimDuration::from_secs(1)), 0);
        let window = c.window().unwrap();
        let mut xids = Vec::new();
        for _ in 0..window + 5 {
            let xid = c.alloc_xid();
            xids.push(xid);
            call(&mut c, ms(0), xid, RpcClass::Lookup, msg(0));
        }
        assert_eq!(c.outstanding(), window);
        assert_eq!(c.queued(), 5);
        assert!(c.stats().window_deferrals >= 5);
        // A reply admits a queued call.
        let (_, actions) = reply(&mut c, ms(10), xids[0], msg(1));
        assert!(first_send_xid(&actions).is_some(), "queued call released");
    }

    #[test]
    fn window_halves_on_timeout() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::dynamic_paper(SimDuration::from_secs(1)), 0);
        let before = c.window().unwrap();
        let xid = c.alloc_xid();
        call(&mut c, ms(0), xid, RpcClass::Read, msg(0));
        timer(&mut c, SimTime::from_secs(1), xid, 1);
        assert!(c.window().unwrap() <= before / 2 + 1);
    }

    #[test]
    fn stray_reply_counted_not_crashing() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::fixed(SimDuration::from_secs(1)), 0);
        let (done, actions) = reply(&mut c, ms(5), 999, msg(0));
        assert!(done.is_none());
        assert!(actions.is_empty());
        assert_eq!(c.stats().stray_replies, 1);
    }

    #[test]
    fn duplicate_reply_is_stray() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::fixed(SimDuration::from_secs(1)), 0);
        let xid = c.alloc_xid();
        call(&mut c, ms(0), xid, RpcClass::Getattr, msg(0));
        let (d1, _) = reply(&mut c, ms(3), xid, msg(1));
        assert!(d1.is_some());
        let (d2, _) = reply(&mut c, ms(4), xid, msg(1));
        assert!(d2.is_none(), "second reply to same xid is stray");
    }

    fn timer_args(actions: &[UdpAction]) -> Option<(u64, SimTime)> {
        actions.iter().find_map(|a| match a {
            UdpAction::ArmTimer { gen, deadline, .. } => Some((*gen, *deadline)),
            _ => None,
        })
    }

    #[test]
    fn soft_mount_gives_up_after_retrans_budget() {
        let cfg = UdpRpcConfig::fixed(SimDuration::from_secs(1)).soft(3);
        let mut c = UdpRpcClient::new(cfg, 0);
        let xid = c.alloc_xid();
        let mut actions = call(&mut c, ms(0), xid, RpcClass::Lookup, msg(0));
        let mut gave_up = false;
        for _ in 0..10 {
            let Some((gen, deadline)) = timer_args(&actions) else {
                break;
            };
            actions = timer(&mut c, deadline, xid, gen);
            if actions
                .iter()
                .any(|a| matches!(a, UdpAction::GiveUp { xid: x } if *x == xid))
            {
                gave_up = true;
                break;
            }
        }
        assert!(gave_up, "soft mount must abandon the call");
        // 3 transmissions then the fourth timer gives up: 2 retransmits.
        assert_eq!(c.stats().retransmits, 2);
        assert_eq!(c.stats().soft_timeouts, 1);
        assert_eq!(c.outstanding(), 0);
        // A late reply for the abandoned xid is stray, not a completion.
        let (done, _) = reply(&mut c, SimTime::from_secs(30), xid, msg(1));
        assert!(done.is_none());
    }

    #[test]
    fn hard_mount_reports_not_responding_then_ok() {
        let mut cfg = UdpRpcConfig::fixed(SimDuration::from_secs(1));
        cfg.retrans = 2;
        let mut c = UdpRpcClient::new(cfg, 0);
        let xid = c.alloc_xid();
        let mut actions = call(&mut c, ms(0), xid, RpcClass::Read, msg(0));
        let mut reported = 0;
        for _ in 0..6 {
            let (gen, deadline) = timer_args(&actions).expect("hard mount always rearms");
            actions = timer(&mut c, deadline, xid, gen);
            reported += actions
                .iter()
                .filter(|a| matches!(a, UdpAction::NotResponding { .. }))
                .count();
        }
        assert_eq!(reported, 1, "one console line per outage");
        assert!(c.outstanding() == 1, "hard mount never gives up");
        let (done, reply_actions) = reply(&mut c, SimTime::from_secs(500), xid, msg(1));
        assert!(done.is_some());
        assert!(
            reply_actions
                .iter()
                .any(|a| matches!(a, UdpAction::ServerOk { .. })),
            "recovery prints server ok"
        );
    }

    #[test]
    fn backoff_respects_sixty_second_cap() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::fixed(SimDuration::from_secs(5)), 0);
        let xid = c.alloc_xid();
        let mut actions = call(&mut c, ms(0), xid, RpcClass::Read, msg(0));
        for _ in 0..12 {
            let (gen, deadline) = timer_args(&actions).unwrap();
            actions = timer(&mut c, deadline, xid, gen);
        }
        assert_eq!(c.stats().max_backoff, SimDuration::from_secs(60));
    }

    #[test]
    fn fixed_policy_never_shrinks_rto() {
        let mut c = UdpRpcClient::new(UdpRpcConfig::fixed(SimDuration::from_secs(1)), 0);
        for i in 0..20u64 {
            let xid = c.alloc_xid();
            call(&mut c, ms(i * 10), xid, RpcClass::Lookup, msg(0));
            reply(&mut c, ms(i * 10 + 1), xid, msg(1));
        }
        assert_eq!(c.current_rto(RpcClass::Lookup), SimDuration::from_secs(1));
    }
}
