//! Retransmit-timeout estimation.
//!
//! Trace data in the paper showed that different NFS RPCs have vastly
//! different round-trip times, with the *big* RPCs (Read, Write, Readdir)
//! also showing higher variance than the *small* ones (Getattr, Lookup).
//! The Reno client therefore keeps a separate Jacobson-style mean (`A`)
//! and mean-deviation (`D`) estimate for each of the four most frequent
//! RPCs, uses `A + 4D` for the big classes (changed from `A + 2D` after
//! early tests showed 2–4x the retry rate), and falls back to the
//! constant mount-time RTO for the infrequent — and mostly
//! non-idempotent — remainder, where a conservative timeout minimizes the
//! risk of redoing the RPC.

use renofs_sim::SimDuration;

/// RPC classes for timeout estimation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RpcClass {
    /// Read — big, estimated.
    Read,
    /// Write — big, estimated.
    Write,
    /// Readdir — big, but infrequent: fixed RTO.
    Readdir,
    /// Getattr — small, estimated.
    Getattr,
    /// Lookup — small, estimated.
    Lookup,
    /// Everything else — fixed RTO (mostly non-idempotent).
    Other,
}

impl RpcClass {
    /// Whether this is one of the paper's *big* RPCs.
    pub fn is_big(self) -> bool {
        matches!(self, RpcClass::Read | RpcClass::Write | RpcClass::Readdir)
    }

    /// Index into the per-class estimator table, if estimated.
    fn slot(self) -> Option<usize> {
        match self {
            RpcClass::Read => Some(0),
            RpcClass::Write => Some(1),
            RpcClass::Getattr => Some(2),
            RpcClass::Lookup => Some(3),
            RpcClass::Readdir | RpcClass::Other => None,
        }
    }
}

/// Jacobson mean/mean-deviation RTT estimator.
///
/// # Examples
///
/// ```
/// use renofs_sim::SimDuration;
/// use renofs_transport::SrttEstimator;
///
/// let mut e = SrttEstimator::new();
/// for _ in 0..20 {
///     e.on_sample(SimDuration::from_millis(30));
/// }
/// let rto = e.rto(4.0).unwrap();
/// assert!(rto >= SimDuration::from_millis(30));
/// assert!(rto < SimDuration::from_millis(60));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct SrttEstimator {
    srtt: f64,
    rttvar: f64,
    initialized: bool,
}

impl SrttEstimator {
    /// Creates an estimator with no samples.
    pub fn new() -> Self {
        SrttEstimator::default()
    }

    /// Feeds one round-trip sample (gains 1/8 and 1/4, per `[Jacobson88a]`).
    pub fn on_sample(&mut self, rtt: SimDuration) {
        let r = rtt.as_secs_f64();
        if !self.initialized {
            self.srtt = r;
            self.rttvar = r / 2.0;
            self.initialized = true;
            return;
        }
        let delta = r - self.srtt;
        self.srtt += delta / 8.0;
        self.rttvar += (delta.abs() - self.rttvar) / 4.0;
    }

    /// Whether at least one sample was taken.
    pub fn has_sample(&self) -> bool {
        self.initialized
    }

    /// Estimated mean RTT (`A`).
    pub fn srtt(&self) -> Option<SimDuration> {
        self.initialized
            .then(|| SimDuration::from_secs_f64(self.srtt))
    }

    /// Estimated mean deviation (`D`).
    pub fn dev(&self) -> Option<SimDuration> {
        self.initialized
            .then(|| SimDuration::from_secs_f64(self.rttvar))
    }

    /// `A + k*D`, or `None` before the first sample.
    pub fn rto(&self, k: f64) -> Option<SimDuration> {
        self.initialized
            .then(|| SimDuration::from_secs_f64(self.srtt + k * self.rttvar))
    }
}

/// How the client chooses its retransmit timeout.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RtoPolicy {
    /// The classic transport: the mount-time constant, always.
    Fixed,
    /// Per-class dynamic estimation with the given big/small multipliers
    /// (the paper uses 4 and 2). `recalc_each_tick` selects whether the
    /// RTO is re-derived from the latest `A`/`D` whenever consulted
    /// (the paper's second fix) or snapshotted at transmission time.
    Dynamic {
        /// Multiplier for big RPCs (`A + big_mult * D`).
        big_mult: f64,
        /// Multiplier for small RPCs.
        small_mult: f64,
        /// Recalculate on every NFS clock tick (true, the paper's fix)
        /// or freeze at request transmission time (false, the ablation).
        recalc_each_tick: bool,
    },
}

impl RtoPolicy {
    /// The paper's final dynamic configuration.
    pub fn dynamic_paper() -> Self {
        RtoPolicy::Dynamic {
            big_mult: 4.0,
            small_mult: 2.0,
            recalc_each_tick: true,
        }
    }
}

/// The per-mount RTO machinery: policy + four class estimators.
///
/// Timeouts leave a *persistent* per-class backoff multiplier (doubling
/// up to 8x) that only a clean — non-retransmitted — sample clears.
/// Without this, Karn's rule starves the estimator exactly when RTTs
/// grow: every new request would restart from the stale, too-small RTO
/// and spuriously retransmit.
#[derive(Clone, Debug)]
pub struct DynRto {
    policy: RtoPolicy,
    base: SimDuration,
    min_rto: SimDuration,
    max_rto: SimDuration,
    estimators: [SrttEstimator; 4],
    backoff: [u32; 4],
}

impl DynRto {
    /// Creates the machinery with the mount-time base RTO.
    pub fn new(policy: RtoPolicy, base: SimDuration) -> Self {
        DynRto {
            policy,
            base,
            min_rto: SimDuration::from_millis(30),
            max_rto: SimDuration::from_secs(30),
            estimators: [SrttEstimator::new(); 4],
            backoff: [1; 4],
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> RtoPolicy {
        self.policy
    }

    /// The mount-time constant RTO.
    pub fn base(&self) -> SimDuration {
        self.base
    }

    /// Feeds a clean (non-retransmitted) RTT sample for a class,
    /// clearing any timeout backoff (no-op for unestimated classes or
    /// the fixed policy).
    pub fn on_sample(&mut self, class: RpcClass, rtt: SimDuration) {
        if matches!(self.policy, RtoPolicy::Fixed) {
            return;
        }
        if let Some(slot) = class.slot() {
            self.estimators[slot].on_sample(rtt);
            self.backoff[slot] = 1;
        }
    }

    /// Records a retransmit timeout: the class RTO stays doubled (up to
    /// 8x) until a clean sample arrives.
    pub fn on_timeout(&mut self, class: RpcClass) {
        if matches!(self.policy, RtoPolicy::Fixed) {
            return;
        }
        if let Some(slot) = class.slot() {
            self.backoff[slot] = (self.backoff[slot] * 2).min(8);
        }
    }

    /// Current RTO for a class, clamped to `[min, max]` and scaled by
    /// any persistent timeout backoff.
    pub fn rto(&self, class: RpcClass) -> SimDuration {
        let raw = match self.policy {
            RtoPolicy::Fixed => self.base,
            RtoPolicy::Dynamic {
                big_mult,
                small_mult,
                ..
            } => {
                let k = if class.is_big() { big_mult } else { small_mult };
                let backoff = class.slot().map(|s| self.backoff[s]).unwrap_or(1);
                let raw = class
                    .slot()
                    .and_then(|s| self.estimators[s].rto(k))
                    .unwrap_or(self.base);
                raw * backoff as u64
            }
        };
        raw.max(self.min_rto).min(self.max_rto)
    }

    /// Read-only access to a class estimator (for trace output such as
    /// Graph 7).
    pub fn estimator(&self, class: RpcClass) -> Option<&SrttEstimator> {
        class.slot().map(|s| &self.estimators[s])
    }

    /// Whether the policy re-derives RTO from current estimates at every
    /// consultation (vs freezing it at send time).
    pub fn recalc_each_tick(&self) -> bool {
        match self.policy {
            RtoPolicy::Fixed => true,
            RtoPolicy::Dynamic {
                recalc_each_tick, ..
            } => recalc_each_tick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> SimDuration {
        SimDuration::from_millis(n)
    }

    #[test]
    fn estimator_converges_to_steady_rtt() {
        let mut e = SrttEstimator::new();
        for _ in 0..100 {
            e.on_sample(ms(25));
        }
        let srtt = e.srtt().unwrap();
        assert!((srtt.as_millis_f64() - 25.0).abs() < 0.5);
        // Deviation decays toward zero on constant samples.
        assert!(e.dev().unwrap() < ms(2));
    }

    #[test]
    fn estimator_tracks_variance() {
        let mut lo = SrttEstimator::new();
        let mut hi = SrttEstimator::new();
        for i in 0..200 {
            lo.on_sample(ms(30));
            hi.on_sample(if i % 2 == 0 { ms(10) } else { ms(50) });
        }
        assert!(
            hi.dev().unwrap() > lo.dev().unwrap() * 4,
            "alternating samples must show much higher deviation"
        );
        // Same mean, very different RTOs.
        assert!(hi.rto(4.0).unwrap() > lo.rto(4.0).unwrap());
    }

    #[test]
    fn no_rto_before_first_sample() {
        let e = SrttEstimator::new();
        assert!(e.rto(4.0).is_none());
        assert!(!e.has_sample());
    }

    #[test]
    fn fixed_policy_ignores_samples() {
        let mut r = DynRto::new(RtoPolicy::Fixed, ms(1000));
        for _ in 0..50 {
            r.on_sample(RpcClass::Read, ms(5));
        }
        assert_eq!(r.rto(RpcClass::Read), ms(1000));
        assert_eq!(r.rto(RpcClass::Other), ms(1000));
    }

    #[test]
    fn dynamic_policy_uses_base_until_sampled() {
        let r = DynRto::new(RtoPolicy::dynamic_paper(), ms(1000));
        assert_eq!(r.rto(RpcClass::Read), ms(1000));
    }

    #[test]
    fn big_rpcs_get_wider_envelope() {
        let mut r = DynRto::new(RtoPolicy::dynamic_paper(), ms(1000));
        // Same noisy sample stream into Read (big) and Lookup (small).
        for i in 0..100 {
            let s = if i % 3 == 0 { ms(60) } else { ms(20) };
            r.on_sample(RpcClass::Read, s);
            r.on_sample(RpcClass::Lookup, s);
        }
        assert!(
            r.rto(RpcClass::Read) > r.rto(RpcClass::Lookup),
            "A+4D must exceed A+2D on the same samples"
        );
    }

    #[test]
    fn unestimated_classes_stay_at_base() {
        let mut r = DynRto::new(RtoPolicy::dynamic_paper(), ms(900));
        for _ in 0..50 {
            r.on_sample(RpcClass::Readdir, ms(10));
            r.on_sample(RpcClass::Other, ms(10));
        }
        assert_eq!(r.rto(RpcClass::Readdir), ms(900));
        assert_eq!(r.rto(RpcClass::Other), ms(900));
    }

    #[test]
    fn classes_are_estimated_separately() {
        let mut r = DynRto::new(RtoPolicy::dynamic_paper(), ms(1000));
        for _ in 0..60 {
            r.on_sample(RpcClass::Read, ms(200));
            r.on_sample(RpcClass::Getattr, ms(8));
        }
        assert!(r.rto(RpcClass::Read) > ms(199));
        assert!(r.rto(RpcClass::Getattr) < ms(50));
    }

    #[test]
    fn rto_clamped_to_bounds() {
        let mut r = DynRto::new(RtoPolicy::dynamic_paper(), ms(1000));
        for _ in 0..60 {
            r.on_sample(RpcClass::Lookup, SimDuration::from_micros(100));
        }
        assert!(
            r.rto(RpcClass::Lookup) >= ms(30),
            "minimum RTO floor applies"
        );
    }

    #[test]
    fn class_bigness() {
        assert!(RpcClass::Read.is_big());
        assert!(RpcClass::Write.is_big());
        assert!(RpcClass::Readdir.is_big());
        assert!(!RpcClass::Getattr.is_big());
        assert!(!RpcClass::Lookup.is_big());
        assert!(!RpcClass::Other.is_big());
    }
}

#[cfg(test)]
mod backoff_tests {
    use super::*;

    #[test]
    fn timeout_backoff_persists_until_clean_sample() {
        let mut r = DynRto::new(RtoPolicy::dynamic_paper(), SimDuration::from_secs(1));
        for _ in 0..20 {
            r.on_sample(RpcClass::Read, SimDuration::from_millis(1400));
        }
        let before = r.rto(RpcClass::Read);
        r.on_timeout(RpcClass::Read);
        let after = r.rto(RpcClass::Read);
        assert_eq!(after.as_nanos(), before.as_nanos() * 2, "doubled");
        r.on_timeout(RpcClass::Read);
        assert_eq!(r.rto(RpcClass::Read).as_nanos(), before.as_nanos() * 4);
        // A clean sample clears it.
        r.on_sample(RpcClass::Read, SimDuration::from_millis(1400));
        assert!(r.rto(RpcClass::Read) < before * 2);
    }
}
