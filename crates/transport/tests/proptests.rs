//! Property tests: TCP delivers the exact byte stream under arbitrary
//! loss patterns, and the congestion window obeys AIMD bounds.

use proptest::prelude::*;
use renofs_mbuf::{CopyMeter, MbufChain};
use renofs_sim::{SimDuration, SimTime};
use renofs_transport::{CongWindow, TcpConfig, TcpConn, TcpOut, TcpSegment};

struct Harness {
    now: SimTime,
    a: TcpConn,
    b: TcpConn,
    received: Vec<u8>,
    timers: Vec<(bool, SimTime, u64)>,
    count: usize,
    losses: Vec<bool>,
    drops_in_row: [usize; 2],
}

impl Harness {
    fn new(losses: Vec<bool>) -> Self {
        let cfg = TcpConfig::for_mss(1460);
        let now = SimTime::from_millis(1);
        let (a, out) = TcpConn::client(cfg, 1, now);
        let b = TcpConn::server(cfg, 70_000);
        let mut h = Harness {
            now,
            a,
            b,
            received: Vec::new(),
            timers: Vec::new(),
            count: 0,
            losses,
            drops_in_row: [0; 2],
        };
        h.pump(out, true);
        h
    }

    fn drop_next(&mut self, from_a: bool) -> bool {
        let i = self.count;
        self.count += 1;
        // The handshake must survive; start dropping after it. Bound
        // consecutive drops *per direction* so the pattern cannot
        // degenerate into an adversary that eats every retransmission
        // (or every returning ACK) forever — something no physical
        // network does.
        let dir = usize::from(from_a);
        let want_drop = i >= 3
            && self
                .losses
                .get(i % self.losses.len().max(1))
                .copied()
                .unwrap_or(false);
        if want_drop && self.drops_in_row[dir] < 4 {
            self.drops_in_row[dir] += 1;
            true
        } else {
            self.drops_in_row[dir] = 0;
            false
        }
    }

    fn absorb(
        &mut self,
        mut out: TcpOut,
        from_a: bool,
        q: &mut std::collections::VecDeque<(TcpSegment, bool)>,
    ) {
        if !from_a {
            for chunk in out.received.drain(..) {
                self.received.extend(chunk.to_vec_for_test());
            }
        }
        if let Some((deadline, gen)) = out.arm_timer {
            self.timers.push((from_a, deadline, gen));
        }
        for seg in out.segments {
            q.push_back((seg, from_a));
        }
    }

    fn pump(&mut self, out: TcpOut, from_a: bool) {
        let mut q = std::collections::VecDeque::new();
        self.absorb(out, from_a, &mut q);
        for _ in 0..200_000 {
            if let Some((seg, seg_from_a)) = q.pop_front() {
                if self.drop_next(seg_from_a) {
                    continue;
                }
                self.now += SimDuration::from_millis(1);
                let sub = {
                    let peer = if seg_from_a { &mut self.b } else { &mut self.a };
                    peer.on_segment(
                        seg.seq,
                        seg.ack,
                        seg.window,
                        seg.flags,
                        seg.payload,
                        self.now,
                    )
                };
                self.absorb(sub, !seg_from_a, &mut q);
                continue;
            }
            let a_done = self.a.backlog() == 0 && self.a.is_established();
            if a_done {
                break;
            }
            self.timers.sort_by_key(|&(_, d, _)| d);
            if self.timers.is_empty() {
                break;
            }
            let (ta, deadline, gen) = self.timers.remove(0);
            self.now = self.now.max(deadline);
            let sub = {
                let conn = if ta { &mut self.a } else { &mut self.b };
                conn.on_timer(gen, self.now)
            };
            self.absorb(sub, ta, &mut q);
        }
    }

    fn send(&mut self, data: &[u8]) {
        let mut m = CopyMeter::new();
        self.now += SimDuration::from_millis(1);
        let out = self.a.send(MbufChain::from_slice(data, &mut m), self.now);
        self.pump(out, true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever pattern of segment loss, the receiver sees exactly the
    /// sent byte stream, in order.
    #[test]
    fn stream_exact_under_loss(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..6000), 1..5),
        losses in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let mut h = Harness::new(losses);
        let mut expected = Vec::new();
        for c in &chunks {
            h.send(c);
            expected.extend_from_slice(c);
        }
        prop_assert_eq!(&h.received, &expected);
    }

    /// AIMD: the window never exceeds its cap, never drops below one,
    /// and halving after growth lands within the expected bounds.
    #[test]
    fn congestion_window_bounds(ops in proptest::collection::vec(any::<bool>(), 1..500)) {
        let cap = 16;
        let mut w = CongWindow::paper(cap);
        for &reply in &ops {
            if reply {
                w.on_reply();
            } else {
                let before = w.window();
                w.on_timeout();
                prop_assert!(w.window() <= before / 2 + 1);
            }
            prop_assert!(w.window() >= 1);
            prop_assert!(w.window() <= cap);
        }
    }
}
