//! Umbrella crate for the RenoFS reproduction.
//!
//! Re-exports every workspace crate under one roof so examples and
//! integration tests can use a single dependency. See the README for the
//! architecture overview and `DESIGN.md` for the full system inventory.

pub use renofs;
pub use renofs_mbuf as mbuf;
pub use renofs_netsim as netsim;
pub use renofs_sim as sim;
pub use renofs_sunrpc as sunrpc;
pub use renofs_transport as transport;
pub use renofs_vfs as vfs;
pub use renofs_workload as workload;
pub use renofs_xdr as xdr;
