#!/usr/bin/env bash
# Opt-in overnight certification soak: the `--long` profile (up to 16
# clients, 8-16 rounds, repeated crash/reboot cycles) under the
# streaming oracle, budgeted by wall-clock, failing fast on the first
# violation (the auto-shrinker prints a minimal repro).
#
# Not part of scripts/check.sh — run it by hand or from a nightly job:
#
#   SOAK_DURATION=28800 SOAK_SEEDS=512 scripts/soak_overnight.sh
#
# Environment:
#   SOAK_DURATION     wall-clock budget in seconds   (default 28800 = 8h)
#   SOAK_SEEDS        seed cap                        (default 512)
#   SOAK_SIM_THREADS  PDES threads per world          (default 1)
#   SOAK_JOBS         parallel worlds                 (default: all cores)
#   SOAK_OUT          summary artifact path           (default SOAK_OVERNIGHT.txt)
set -euo pipefail

cd "$(dirname "$0")/.."

DURATION="${SOAK_DURATION:-28800}"
SEEDS="${SOAK_SEEDS:-512}"
SIM_THREADS="${SOAK_SIM_THREADS:-1}"
OUT="${SOAK_OUT:-SOAK_OVERNIGHT.txt}"
JOBS_ARGS=()
if [[ -n "${SOAK_JOBS:-}" ]]; then
    JOBS_ARGS=(--jobs "$SOAK_JOBS")
fi

echo "==> building release repro"
cargo build -q --release -p renofs-bench --bin repro

echo "==> overnight soak: --long, ${DURATION}s budget, up to ${SEEDS} seeds," \
     "sim-threads=${SIM_THREADS} (heartbeats below; summary -> ${OUT})"
STATUS=0
./target/release/repro soak --long --duration "$DURATION" --seeds "$SEEDS" \
    --sim-threads "$SIM_THREADS" "${JOBS_ARGS[@]}" | tee "$OUT" || STATUS=$?

if [[ "$STATUS" -ne 0 ]]; then
    echo "==> OVERNIGHT SOAK FAILED (exit $STATUS): see $OUT for the shrunk repro"
else
    echo "==> overnight soak clean: summary in $OUT"
fi
exit "$STATUS"
