#!/usr/bin/env bash
# The full local gate: format, lints as errors, and the test suite.
# Run from anywhere inside the repository.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> repro faults --scale quick (smoke)"
cargo run -q --release -p renofs-bench --bin repro -- faults --scale quick >/dev/null

echo "==> repro crowd --scale quick (smoke)"
cargo run -q --release -p renofs-bench --bin repro -- crowd --scale quick >/dev/null

echo "==> repro pdes-smoke --scale quick (256-client carve + determinism gate)"
cargo run -q --release -p renofs-bench --bin repro -- pdes-smoke --scale quick

echo "==> crowd determinism matrix (sim-threads x jobs, byte-identical)"
cargo test -q -p renofs-bench --release --test pdes_determinism

echo "==> repro shard-smoke --scale quick (N x M fleet + router determinism gate)"
# Runs a small sharded-fleet cell, checks every shard served traffic,
# and re-runs it under a sim-threads x jobs matrix asserting
# byte-identical digests; exits nonzero on any mismatch.
cargo run -q --release -p renofs-bench --bin repro -- shard-smoke --scale quick

echo "==> repro soak --seeds 24 --scale quick (chaos oracle gate)"
# Exits nonzero on any oracle violation; a fixed seed range keeps the
# gate deterministic and bounded.
cargo run -q --release -p renofs-bench --bin repro -- soak --seeds 24 --scale quick >/dev/null

echo "==> repro soak --lease --seeds 12 --scale quick (NQNFS lease oracle gate)"
# Lease worlds (write-behind clients, crash/reboot and partition
# windows) against the tightened lease oracle grace; exits nonzero on
# any violation.
cargo run -q --release -p renofs-bench --bin repro -- soak --lease --seeds 12 \
    --scale quick >/dev/null

echo "==> repro soak --duration 30 --seeds 8 (streaming budget-mode smoke)"
# Time-boxed streaming-oracle run: exits 1 on the first violation
# (fail-fast), caps at 8 seeds so it finishes well inside the box.
cargo run -q --release -p renofs-bench --bin repro -- soak --duration 30 --seeds 8 \
    --scale quick >/dev/null

echo "==> cargo test -p renofs-bench --features profile (alloc discipline + profiler)"
cargo test -q -p renofs-bench --features profile --release

echo "==> repro bench --check BENCH_pr4.json (queue + crowd + lease regression gates)"
# Also holds the PDES matrix gates, the BENCH_pr8.json lease gate
# (>=60% write-RPC recovery vs noconsist at zero soak violations), and
# the BENCH_pr9.json shard gate (LAN aggregate op/s at M=4 >= 2x M=1,
# all shards routed, fairness >= 0.8, byte-identical across a fresh
# sim-threads x jobs matrix).
cargo run -q --release -p renofs-bench --bin repro -- bench --scale quick --check BENCH_pr4.json

echo "All checks passed."
