//! Quickstart: mount an NFS export over a simulated Ethernet, do file
//! I/O through the full protocol stack, and inspect the statistics.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use renofs_repro::renofs::client::{ClientConfig, ClientFs};
use renofs_repro::renofs::{NfsProc, World, WorldConfig};
use renofs_repro::sim::SimTime;

fn main() {
    // A world = one client machine + one server machine (both modeled as
    // the paper's MicroVAXIIs) joined by a 10 Mbit/s Ethernet, with the
    // tuned NFS/UDP transport (dynamic RTO + congestion window).
    let mut world = World::new(WorldConfig::baseline());
    let root = world.root_handle();

    // Results come back from the workload thread over a channel.
    let (tx, rx) = std::sync::mpsc::channel();

    world.spawn(move |sys| {
        // Mount. `sys` gives the workload blocking syscalls backed by
        // the event loop: every RPC crosses the simulated wire.
        let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "client");

        // Create a directory and a file, write, read back.
        fs.mkdir("/projects").expect("mkdir");
        let fh = fs.open("/projects/hello.txt", true, false).expect("create");
        fs.write(fh, 0, b"Hello from 1991! NFS over a simulated LAN.")
            .expect("write");
        fs.close(fh).expect("close pushes dirty data");

        // Reading it again is served from the client block cache —
        // watch the RPC counters to see that.
        let data = fs.read(fh, 0, 100).expect("read");
        let text = String::from_utf8_lossy(&data).to_string();

        // A bigger file: 64 KB crosses the wire as 8 KB READ/WRITE RPCs,
        // each one fragmented into ~6 IP fragments on the Ethernet.
        let big = fs.open("/projects/big.bin", true, false).expect("create");
        let payload: Vec<u8> = (0..65536u32).map(|i| (i % 251) as u8).collect();
        fs.write(big, 0, &payload).expect("write 64K");
        fs.close(big).expect("close");
        let back = fs.read(big, 0, 65536).expect("read 64K");
        assert_eq!(back, payload, "every byte crossed the network intact");

        let _ = tx.send((text, fs.counts()));
    });

    world.run();

    let (text, counts) = rx.recv().expect("workload finished");
    println!("read back: {text:?}");
    println!();
    println!("client RPCs issued:");
    for proc in [
        NfsProc::Lookup,
        NfsProc::Getattr,
        NfsProc::Create,
        NfsProc::Mkdir,
        NfsProc::Write,
        NfsProc::Read,
    ] {
        println!("  {:?}: {}", proc, counts.count(proc));
    }
    println!("  total: {}", counts.total());
    println!();
    let net = world.net_stats();
    println!(
        "network: {} datagrams sent as {} fragments ({} dropped)",
        net.datagrams_sent, net.frags_sent, net.frags_dropped
    );
    println!(
        "virtual time elapsed: {:.3}s (simulated MicroVAXIIs are slow!)",
        world.now().as_secs_f64()
    );
    assert!(world.now() > SimTime::ZERO);
}
