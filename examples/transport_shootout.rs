//! The paper's headline experiment in miniature: the same NFS read load
//! over the 56 Kbps internetwork with the three transports.
//!
//! Fixed-RTO UDP retransmits spuriously (its 1 s timeout is shorter than
//! the real round trip), flooding the slow link with duplicate 8 KB
//! replies; dynamic-RTO UDP with a congestion window, and TCP, stay
//! stable — the result that made "NFS over TCP" respectable.
//!
//! ```sh
//! cargo run --release --example transport_shootout
//! ```

use renofs_repro::netsim::topology::presets::Background;
use renofs_repro::renofs::{TopologyKind, TransportKind, World, WorldConfig};
use renofs_repro::sim::SimDuration;
use renofs_repro::workload::nhfsstone::{self, LoadMix, NhfsstoneConfig};

fn main() {
    println!("NFS read load over 2 Ethernets + 80Mb token ring + 56Kbps line + 3 routers");
    println!("(offered: 1.2 reads/sec against a link that fits ~0.7)\n");
    println!(
        "{:<16} {:>9} {:>10} {:>12} {:>12}",
        "transport", "reads/s", "rtt (ms)", "retransmits", "lost dgrams"
    );

    for (label, transport) in [
        (
            "UDP rto=1s",
            TransportKind::UdpFixed {
                timeo: SimDuration::from_secs(1),
            },
        ),
        (
            "UDP rto=A+4D",
            TransportKind::UdpDynamic {
                timeo: SimDuration::from_secs(1),
            },
        ),
        ("TCP", TransportKind::Tcp),
    ] {
        let mut cfg = WorldConfig::baseline();
        cfg.topology = TopologyKind::SlowLink;
        cfg.background = Background::off_peak();
        cfg.transport = transport;
        cfg.seed = 56_000;
        let mut world = World::new(cfg);

        let mut ncfg = NhfsstoneConfig::paper(
            1.2,
            LoadMix {
                lookup: 0,
                read: 100,
                getattr: 0,
                setattr: 0,
                write: 0,
            },
        );
        ncfg.duration = SimDuration::from_secs(300);
        ncfg.warmup = SimDuration::from_secs(10);
        ncfg.nfiles = 40;

        let report = nhfsstone::run(&mut world, &ncfg);
        let retrans = world
            .udp_stats()
            .map(|s| s.retransmits)
            .or_else(|| world.tcp_stats().map(|s| s.retransmits))
            .unwrap_or(0);
        let lost = world.net_stats().reasm_failures;
        println!(
            "{:<16} {:>9.2} {:>10.0} {:>12} {:>12}",
            label,
            report.achieved_rate,
            report.rtt_ms.mean(),
            retrans,
            lost
        );
    }

    println!();
    println!("The paper's Table 1: TCP and dynamic-RTO UDP read rates on this path");
    println!("were 'over three times that of UDP with fixed RTO'.");
}
