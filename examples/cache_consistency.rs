//! Section 5 in action: what the mtime-based consistency machinery
//! costs, and what the experimental `noconsist` mount flag buys.
//!
//! Runs the same write-then-read workload under three mount
//! configurations and prints the RPC bill for each — the mechanism
//! behind the paper's Table 3 differences.
//!
//! ```sh
//! cargo run --example cache_consistency
//! ```

use renofs_repro::renofs::client::{ClientConfig, ClientFs};
use renofs_repro::renofs::{NfsProc, RpcCounts, Syscalls, World, WorldConfig};

fn workload(cfg: ClientConfig) -> (RpcCounts, f64) {
    let mut world = World::new(WorldConfig::baseline());
    let root = world.root_handle();
    let (tx, rx) = std::sync::mpsc::channel();
    world.spawn(move |sys| {
        let mut fs = ClientFs::mount(sys, cfg, root, "client");
        let t0 = fs.sys().now();
        // Edit-compile-ish loop: write a file, read it back, repeat.
        for round in 0..5u32 {
            let fh = fs.open("/work.c", true, false).expect("open");
            let body = vec![b'a' + (round % 26) as u8; 24 * 1024];
            fs.write(fh, 0, &body).expect("write");
            fs.close(fh).expect("close");
            // "Compile": read the file back.
            let fh = fs.open("/work.c", false, false).expect("reopen");
            let back = fs.read(fh, 0, 24 * 1024).expect("read");
            assert_eq!(back.len(), 24 * 1024);
            assert!(back.iter().all(|&b| b == b'a' + (round % 26) as u8));
            fs.close(fh).expect("close");
        }
        fs.sync().expect("flush stragglers");
        let elapsed = fs.sys().now().since(t0).as_secs_f64();
        let _ = tx.send((fs.counts(), elapsed));
    });
    world.run();
    rx.recv().expect("done")
}

fn main() {
    println!("Five write-24K-then-read-back rounds over simulated NFS.\n");
    println!(
        "{:<16} {:>7} {:>7} {:>8} {:>8} {:>9} {:>9}",
        "mount", "reads", "writes", "lookups", "getattrs", "total", "time (s)"
    );
    for (label, cfg) in [
        ("Reno", ClientConfig::reno()),
        ("Reno-noconsist", ClientConfig::reno_noconsist()),
        ("Ultrix-model", ClientConfig::ultrix()),
    ] {
        let (c, secs) = workload(cfg);
        println!(
            "{:<16} {:>7} {:>7} {:>8} {:>8} {:>9} {:>9.1}",
            label,
            c.count(NfsProc::Read),
            c.count(NfsProc::Write),
            c.count(NfsProc::Lookup),
            c.count(NfsProc::Getattr),
            c.total(),
            secs,
        );
    }
    println!();
    println!("Reno pushes dirty blocks before reading and flushes its cache when the");
    println!("mtime moves (it cannot tell its own writes from another client's), so it");
    println!("re-reads data it just wrote. noconsist trusts the cache: far fewer RPCs —");
    println!("the paper's optimistic bound on what a cache-consistency protocol buys.");
}
