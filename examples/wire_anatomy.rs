//! Anatomy of an NFS RPC on the wire: build a LOOKUP call the way the
//! Reno kernel does — directly into mbuf chains — then fragment it,
//! checksum it, and decode it back.
//!
//! ```sh
//! cargo run --example wire_anatomy
//! ```

use renofs_repro::mbuf::{CopyMeter, MbufChain};
use renofs_repro::netsim::internet_checksum;
use renofs_repro::renofs::proto::{self, NfsProc};
use renofs_repro::renofs::FileHandle;
use renofs_repro::sunrpc::{
    frame_record, AuthUnix, CallHeader, RecordReader, NFS_PROGRAM, NFS_VERSION,
};
use renofs_repro::xdr::XdrDecoder;

fn hexdump(bytes: &[u8], limit: usize) {
    for (i, chunk) in bytes.chunks(16).take(limit / 16).enumerate() {
        let hex: Vec<String> = chunk.iter().map(|b| format!("{b:02x}")).collect();
        println!("  {:04x}: {}", i * 16, hex.join(" "));
    }
    if bytes.len() > limit {
        println!("  ... {} more bytes", bytes.len() - limit);
    }
}

fn main() {
    let mut meter = CopyMeter::new();

    // 1. Build the call message straight into an mbuf chain, leaving
    //    leading space for lower-layer headers (the MH_ALIGN idiom).
    let mut msg = MbufChain::with_leading_space(64);
    CallHeader {
        xid: 0x1991,
        prog: NFS_PROGRAM,
        vers: NFS_VERSION,
        proc: NfsProc::Lookup.to_wire(),
        auth: AuthUnix::root("uvax2"),
    }
    .encode(&mut msg, &mut meter);
    let dir = FileHandle {
        fsid: 1,
        ino: 2,
        gen: 1,
    };
    proto::build::dirop_args(&mut msg, &mut meter, &dir, "vmunix.c");

    println!("LOOKUP(dir=2, \"vmunix.c\"), xid=0x1991");
    println!(
        "message: {} bytes in {} mbufs ({} bytes copied building it)",
        msg.len(),
        msg.seg_count(),
        meter.bytes()
    );
    hexdump(&msg.to_vec_for_test(), 96);
    println!("internet checksum: 0x{:04x}", internet_checksum(&msg));
    println!();

    // 2. The server-side dissect: parse it back without flattening.
    let mut dec = XdrDecoder::new(&msg);
    let hdr = CallHeader::decode(&mut dec).expect("valid call");
    let args = proto::decode_args(NfsProc::Lookup, &mut dec).expect("valid args");
    println!(
        "decoded: xid={:#x} prog={} proc={}",
        hdr.xid, hdr.prog, hdr.proc
    );
    if let proto::NfsArgs::DirOp(fh, name) = args {
        println!("args: dir inode {} gen {}, name {name:?}", fh.ino, fh.gen);
    }
    println!();

    // 3. Record marking for TCP: frame it, then recover it from a
    //    byte stream delivered in awkward chunks.
    let framed = frame_record(msg.clone(), &mut meter);
    println!(
        "record-marked for TCP: {} bytes (4-byte mark + message)",
        framed.len()
    );
    let mut reader = RecordReader::new();
    let mut stream = framed;
    while !stream.is_empty() {
        let take = stream.len().min(7); // tiny TCP segments
        let rest = stream.split_off(take, &mut meter);
        let piece = std::mem::replace(&mut stream, rest);
        reader.push(piece);
    }
    let recovered = reader.next_record(&mut meter).expect("whole record");
    assert_eq!(recovered.to_vec_for_test(), msg.to_vec_for_test());
    println!("recovered intact from 7-byte stream chunks");
    println!();

    // 4. Sharing without copying: an 8 KB read reply's data rides in
    //    shared clusters; slicing fragments costs no copies.
    let mut big = MbufChain::new();
    big.append_bytes(&vec![0x42u8; 8192], &mut meter);
    let before = meter.take().0;
    let frag = big.share_range(1480, 1480, &mut meter);
    let (copied, _) = meter.take();
    println!(
        "fragmenting an 8K cluster chain: slice of {} bytes copied {} bytes \
         (clusters are reference-shared; building it had copied {} bytes)",
        frag.len(),
        copied,
        before
    );
}
