//! Cross-crate integration: full client↔server stacks over every
//! transport and topology.

use renofs_repro::netsim::topology::presets::Background;
use renofs_repro::renofs::client::{ClientConfig, ClientFs};
use renofs_repro::renofs::{TopologyKind, TransportKind, World, WorldConfig};
use renofs_repro::sim::{SimDuration, SimTime};

fn world(topology: TopologyKind, transport: TransportKind, bg: Background, seed: u64) -> World {
    let mut cfg = WorldConfig::baseline();
    cfg.topology = topology;
    cfg.transport = transport;
    cfg.background = bg;
    cfg.seed = seed;
    World::new(cfg)
}

fn exercise(mut w: World) -> World {
    let root = w.root_handle();
    let (tx, rx) = std::sync::mpsc::channel();
    w.spawn(move |sys| {
        let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "client");
        fs.mkdir("/dir").unwrap();
        let fh = fs.open("/dir/file.bin", true, false).unwrap();
        let data: Vec<u8> = (0..30_000u32).map(|i| (i * 7 % 256) as u8).collect();
        fs.write(fh, 0, &data).unwrap();
        fs.close(fh).unwrap();
        let back = fs.read(fh, 0, 30_000).unwrap();
        assert_eq!(back, data, "data integrity through the full stack");
        // Metadata operations.
        fs.rename("/dir/file.bin", "/dir/renamed.bin").unwrap();
        let attr = fs.stat("/dir/renamed.bin").unwrap();
        assert_eq!(attr.size, 30_000);
        let entries = fs.readdir("/dir").unwrap();
        assert_eq!(entries.len(), 1);
        fs.remove("/dir/renamed.bin").unwrap();
        fs.rmdir("/dir").unwrap();
        tx.send(fs.counts().total()).unwrap();
    });
    w.run();
    assert!(rx.recv().unwrap() > 10);
    w
}

#[test]
fn udp_dynamic_same_lan() {
    let w = exercise(world(
        TopologyKind::SameLan,
        TransportKind::UdpDynamic {
            timeo: SimDuration::from_secs(1),
        },
        Background::quiet(),
        1,
    ));
    assert_eq!(w.net_stats().frags_dropped, 0, "quiet LAN loses nothing");
}

#[test]
fn udp_fixed_token_ring() {
    exercise(world(
        TopologyKind::TokenRing,
        TransportKind::UdpFixed {
            timeo: SimDuration::from_secs(1),
        },
        Background::off_peak(),
        2,
    ));
}

#[test]
fn tcp_slow_link() {
    let w = exercise(world(
        TopologyKind::SlowLink,
        TransportKind::Tcp,
        Background::off_peak(),
        3,
    ));
    // TCP segments to the 576-byte serial MTU: no IP fragmentation, so
    // no reassembly failures ever.
    assert_eq!(w.net_stats().reasm_failures, 0);
}

#[test]
fn udp_survives_heavy_loss() {
    // 5% per-fragment loss on every LAN link: hard mounts retry until
    // data gets through, and the bytes must still be exact.
    let bg = Background {
        ethernet: 0.2,
        ring: 0.1,
        lan_loss: 0.05,
        serial_loss: 0.0,
    };
    let w = exercise(world(
        TopologyKind::TokenRing,
        TransportKind::UdpDynamic {
            timeo: SimDuration::from_secs(1),
        },
        bg,
        4,
    ));
    let stats = w.udp_stats().unwrap();
    assert!(stats.retransmits > 0, "loss must have forced retransmits");
    assert!(w.net_stats().frags_dropped > 0);
}

#[test]
fn tcp_survives_heavy_loss() {
    let bg = Background {
        ethernet: 0.2,
        ring: 0.1,
        lan_loss: 0.05,
        serial_loss: 0.0,
    };
    let w = exercise(world(TopologyKind::TokenRing, TransportKind::Tcp, bg, 5));
    assert!(w.tcp_stats().unwrap().retransmits > 0);
}

#[test]
fn identical_seeds_identical_worlds() {
    let run = |seed| {
        let w = exercise(world(
            TopologyKind::TokenRing,
            TransportKind::UdpDynamic {
                timeo: SimDuration::from_secs(1),
            },
            Background::off_peak(),
            seed,
        ));
        (
            w.now(),
            w.net_stats().frags_sent,
            w.server().stats().total(),
        )
    };
    assert_eq!(run(77), run(77), "bit-identical replay");
    assert_ne!(run(77).0, run(78).0, "different seeds diverge");
}

#[test]
fn server_utilization_reported() {
    let mut w = world(
        TopologyKind::SameLan,
        TransportKind::UdpDynamic {
            timeo: SimDuration::from_secs(1),
        },
        Background::quiet(),
        6,
    );
    let root = w.root_handle();
    w.spawn(move |sys| {
        let mut fs = ClientFs::mount(sys, ClientConfig::reno(), root, "client");
        let fh = fs.open("/burn.bin", true, false).unwrap();
        fs.write(fh, 0, &vec![0u8; 200_000]).unwrap();
        fs.close(fh).unwrap();
    });
    w.run();
    let now = w.now();
    assert!(now > SimTime::ZERO);
    let util = w.server_host().cpu.utilization(now);
    assert!(util > 0.0 && util <= 1.0, "utilization {util}");
    assert!(
        w.server_host().disk.stats().writes > 0,
        "write-through reached the simulated disk"
    );
}
