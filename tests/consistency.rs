//! Close/open consistency and multi-client sharing semantics over the
//! full simulated stack.

use renofs_repro::renofs::client::{ClientConfig, ClientFs};
use renofs_repro::renofs::{Syscalls, World, WorldConfig};
use renofs_repro::sim::SimDuration;

/// Two clients on the same mount point: writer closes, reader opens —
/// the paper's close/open consistency guarantee.
#[test]
fn close_open_consistency_between_clients() {
    let mut world = World::new(WorldConfig::baseline());
    let root = world.root_handle();
    // Writer, then reader, strictly ordered through a channel pair.
    let (wtx, wrx) = std::sync::mpsc::channel::<()>();
    let (rtx, rrx) = std::sync::mpsc::channel();
    world.spawn(move |sys| {
        let mut fs = ClientFs::mount(&mut *sys, ClientConfig::reno(), root, "writer");
        fs.set_xid_base(0x1000_0000);
        let fh = fs.open("/shared.txt", true, false).unwrap();
        fs.write(fh, 0, b"committed at close").unwrap();
        fs.close(fh).unwrap();
        // Signal the reader only after close returned.
        let _ = wtx.send(());
    });
    world.spawn(move |sys| {
        // Wait (in virtual time) until the writer closed.
        while wrx.try_recv().is_err() {
            sys.sleep(SimDuration::from_millis(50));
        }
        let mut fs = ClientFs::mount(&mut *sys, ClientConfig::reno(), root, "reader");
        fs.set_xid_base(0x2000_0000);
        let fh = fs.open("/shared.txt", false, false).unwrap();
        let data = fs.read(fh, 0, 100).unwrap();
        let _ = rtx.send(data);
    });
    world.run();
    assert_eq!(
        rrx.recv().unwrap(),
        b"committed at close",
        "a client opening after another's close sees the writes"
    );
}

/// Without push-on-close, a second client may see stale data — the
/// sharing hazard the noconsist flag accepts.
#[test]
fn nopush_breaks_close_open_consistency() {
    let mut world = World::new(WorldConfig::baseline());
    let root = world.root_handle();
    let (wtx, wrx) = std::sync::mpsc::channel::<()>();
    let (rtx, rrx) = std::sync::mpsc::channel();
    world.spawn(move |sys| {
        let mut fs = ClientFs::mount(&mut *sys, ClientConfig::reno_noconsist(), root, "writer");
        fs.set_xid_base(0x1000_0000);
        let fh = fs.open("/lazy.txt", true, false).unwrap();
        fs.write(fh, 0, b"still only in my cache").unwrap();
        fs.close(fh).unwrap(); // noconsist: nothing pushed
        let _ = wtx.send(());
        // Push eventually (the 30-second sync).
        fs.sys().sleep(SimDuration::from_secs(2));
        fs.sync().unwrap();
    });
    world.spawn(move |sys| {
        while wrx.try_recv().is_err() {
            sys.sleep(SimDuration::from_millis(50));
        }
        let mut fs = ClientFs::mount(&mut *sys, ClientConfig::reno(), root, "reader");
        fs.set_xid_base(0x2000_0000);
        let fh = fs.open("/lazy.txt", false, false).unwrap();
        let data = fs.read(fh, 0, 100).unwrap();
        let _ = rtx.send(data);
    });
    world.run();
    let seen = rrx.recv().unwrap();
    assert!(
        seen.is_empty(),
        "reader right after close sees an empty file: the write was not pushed, got {seen:?}"
    );
}

/// A reader polling a file eventually observes another client's write
/// (attribute timeout + mtime check), without any callback machinery.
#[test]
fn mtime_polling_sees_remote_writes() {
    let mut world = World::new(WorldConfig::baseline());
    let root = world.root_handle();
    let (tx, rx) = std::sync::mpsc::channel();
    world.spawn(move |sys| {
        let mut fs = ClientFs::mount(&mut *sys, ClientConfig::reno(), root, "writer");
        fs.set_xid_base(0x1000_0000);
        let fh = fs.open("/feed.log", true, false).unwrap();
        fs.write(fh, 0, b"v1").unwrap();
        fs.close(fh).unwrap();
        fs.sys().sleep(SimDuration::from_secs(20));
        let fh = fs.open("/feed.log", false, false).unwrap();
        fs.write(fh, 0, b"v2").unwrap();
        fs.close(fh).unwrap();
    });
    world.spawn(move |sys| {
        sys.sleep(SimDuration::from_secs(5));
        let mut fs = ClientFs::mount(&mut *sys, ClientConfig::reno(), root, "reader");
        fs.set_xid_base(0x2000_0000);
        let fh = fs.open("/feed.log", false, false).unwrap();
        let first = fs.read(fh, 0, 10).unwrap();
        // Poll until the content changes; the 5s attribute timeout
        // bounds the staleness.
        let mut last = first.clone();
        for _ in 0..20 {
            fs.sys().sleep(SimDuration::from_secs(3));
            last = fs.read(fh, 0, 10).unwrap();
            if last != first {
                break;
            }
        }
        let _ = tx.send((first, last));
    });
    world.run();
    let (first, last) = rx.recv().unwrap();
    assert_eq!(first, b"v1");
    assert_eq!(last, b"v2", "mtime check invalidated the cached block");
}

/// The stateless server: a crash/reboot in the middle of a workload is
/// invisible to the client beyond latency — file handles stay valid.
#[test]
fn server_reboot_is_transparent() {
    let mut world = World::new(WorldConfig::baseline());
    let root = world.root_handle();
    let (tx, rx) = std::sync::mpsc::channel();
    let (half_tx, half_rx) = std::sync::mpsc::channel::<()>();
    world.spawn(move |sys| {
        let mut fs = ClientFs::mount(&mut *sys, ClientConfig::reno(), root, "client");
        let fh = fs.open("/persist.bin", true, false).unwrap();
        fs.write(fh, 0, &vec![7u8; 20_000]).unwrap();
        fs.close(fh).unwrap();
        let _ = half_tx.send(());
        // Give the reboot a moment, then keep using the same handle.
        fs.sys().sleep(SimDuration::from_secs(1));
        let data = fs.read(fh, 0, 20_000).unwrap();
        let _ = tx.send(data.len());
    });
    // Run until the first half is done, reboot the server, continue.
    loop {
        world.run_until(world.now() + SimDuration::from_millis(200));
        if half_rx.try_recv().is_ok() {
            break;
        }
    }
    world.server_mut().reboot();
    world.run();
    assert_eq!(rx.recv().unwrap(), 20_000, "handles survive the reboot");
}
